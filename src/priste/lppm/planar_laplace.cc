#include "priste/lppm/planar_laplace.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <unordered_map>

#include "priste/common/check.h"
#include "priste/common/strings.h"

namespace priste::lppm {
namespace {

/// Mass of the continuous planar-Laplace noise — density (α²/2π)·e^{−α·|p|}
/// around the origin — over an axis-aligned rectangle.
///
/// For a radially symmetric density the mass over any polygon decomposes into
/// signed origin-fan triangles, and each triangle's 2D integral collapses to a
/// smooth 1D angular integral of the closed-form radial CDF
/// G(R) = 1 − (1+αR)·e^{−αR}: the r = 0 cusp of the density is absorbed
/// analytically, so four adaptive-Simpson edge sweeps give the exact cell mass
/// to quadrature tolerance — including for the rectangle containing the
/// origin.
class PlanarLaplaceCellMass {
 public:
  explicit PlanarLaplaceCellMass(double alpha) : alpha_(alpha) {
    PRISTE_CHECK(alpha > 0.0);
  }

  /// P(noise ∈ [x0, x1] × [y0, y1]); coordinates relative to the origin. The
  /// rectangle's edge lines must not pass through the origin (cell boundaries
  /// never contain a cell center). Degenerate rectangles have mass 0.
  double OverRect(double x0, double x1, double y0, double y1) const {
    if (x0 >= x1 || y0 >= y1) return 0.0;
    // Entirely inside the saturated tail: the radial CDF is 1 to within
    // 1e-17 across the whole rectangle, so the four signed sweeps cancel.
    const double rx = std::max({x0, -x1, 0.0});
    const double ry = std::max({y0, -y1, 0.0});
    if (alpha_ * std::sqrt(rx * rx + ry * ry) > 42.0) return 0.0;
    const double p = EdgeSweep(x0, y0, x1, y0) + EdgeSweep(x1, y0, x1, y1) +
                     EdgeSweep(x1, y1, x0, y1) + EdgeSweep(x0, y1, x0, y0);
    return std::clamp(p, 0.0, 1.0);
  }

 private:
  double RadialCdf(double r) const {
    const double ar = alpha_ * r;
    return 1.0 - (1.0 + ar) * std::exp(-ar);
  }

  // Signed fan-triangle term for the directed edge a → b: the sweep covers
  // the angles between a and b (|Δθ| < π; the edge line misses the origin),
  // and r(φ) is the ray/edge-line intersection distance.
  double EdgeSweep(double ax, double ay, double bx, double by) const {
    const double cross = ax * by - ay * bx;
    const double dot = ax * bx + ay * by;
    const double dtheta = std::atan2(cross, dot);
    if (dtheta == 0.0) return 0.0;
    const double theta_a = std::atan2(ay, ax);
    const double dx = bx - ax;
    const double dy = by - ay;
    const double num = ax * dy - ay * dx;  // cross(a, b − a)
    const auto integrand = [&](double s) {
      const double t = theta_a + s * dtheta;
      const double den = std::cos(t) * dy - std::sin(t) * dx;
      const double r = num / den;
      // Within the open sweep r is finite and positive; the guard only
      // catches floating-point noise at the sweep endpoints.
      if (!std::isfinite(r) || r <= 0.0) return 1.0;
      return RadialCdf(r);
    };
    const double f0 = integrand(0.0);
    const double f05 = integrand(0.5);
    const double f1 = integrand(1.0);
    const double whole = (f0 + 4.0 * f05 + f1) / 6.0;
    const double unit = AdaptiveSimpson(integrand, 0.0, f0, 1.0, f1, 0.5, f05,
                                        whole, 1e-11, 20);
    return unit * dtheta / (2.0 * std::numbers::pi);
  }

  template <typename F>
  static double AdaptiveSimpson(const F& f, double a, double fa, double b,
                                double fb, double m, double fm, double whole,
                                double tol, int depth) {
    const double lm = 0.5 * (a + m);
    const double rm = 0.5 * (m + b);
    const double flm = f(lm);
    const double frm = f(rm);
    const double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
    const double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
    const double delta = left + right - whole;
    if (depth <= 0 || std::fabs(delta) <= 15.0 * tol) {
      return left + right + delta / 15.0;
    }
    return AdaptiveSimpson(f, a, fa, m, fm, lm, flm, left, 0.5 * tol, depth - 1) +
           AdaptiveSimpson(f, m, fm, b, fb, rm, frm, right, 0.5 * tol, depth - 1);
  }

  double alpha_;
};

/// E(i, o) = Pr(clamp(c_i + noise) ∈ cell o): the *exact* discretization of
/// SampleContinuous. The preimage of an interior cell is the cell itself; a
/// border cell additionally absorbs the clamped off-grid mass, so its
/// preimage extends to infinity across the border sides (truncated at the
/// radius where the remaining tail mass is below 1e-18). Rows are normalized
/// by their quadrature sum (≈ 1 by construction — the preimages tile the
/// plane) so the matrix is exactly row-stochastic.
hmm::EmissionMatrix BuildEmission(const geo::Grid& grid, double alpha) {
  const size_t m = grid.num_cells();
  if (alpha <= 0.0) {
    return hmm::EmissionMatrix::Uniform(m, m);
  }
  const double s = grid.cell_size_km();
  // (1 + αR)e^{−αR} < 1e−18 at αR = 45.
  const double r_cut = 45.0 / alpha;
  const PlanarLaplaceCellMass mass(alpha);
  const int w = grid.width();
  const int h = grid.height();
  PRISTE_CHECK_MSG(w < 2000 && h < 2000, "grid too large for offset keying");

  // The mass depends only on the cell offset (Δcol, Δrow) and which border
  // sides cell o clamps — O(w·h) distinct geometries for the m² pairs.
  std::unordered_map<int32_t, double> cache;
  cache.reserve(4 * m);
  linalg::Matrix e(m, m);
  for (size_t i = 0; i < m; ++i) {
    const int ci = grid.ColOf(static_cast<int>(i));
    const int ri = grid.RowOf(static_cast<int>(i));
    double sum = 0.0;
    for (size_t o = 0; o < m; ++o) {
      const int co = grid.ColOf(static_cast<int>(o));
      const int ro = grid.RowOf(static_cast<int>(o));
      const int flags = (co == 0 ? 1 : 0) | (co == w - 1 ? 2 : 0) |
                        (ro == 0 ? 4 : 0) | (ro == h - 1 ? 8 : 0);
      const int32_t key = (((co - ci + 2048) << 16) | ((ro - ri + 2048) << 4) |
                           flags);
      const auto it = cache.find(key);
      double p;
      if (it != cache.end()) {
        p = it->second;
      } else {
        // Preimage bounds relative to the center of cell i: the cell square,
        // border sides extended to (and everything truncated at) the tail
        // radius. (s * offset keeps the bounds a pure function of the key.)
        const double x0 =
            std::max((flags & 1) ? -r_cut : (co - ci - 0.5) * s, -r_cut);
        const double x1 =
            std::min((flags & 2) ? r_cut : (co - ci + 0.5) * s, r_cut);
        const double y0 =
            std::max((flags & 4) ? -r_cut : (ro - ri - 0.5) * s, -r_cut);
        const double y1 =
            std::min((flags & 8) ? r_cut : (ro - ri + 0.5) * s, r_cut);
        p = mass.OverRect(x0, x1, y0, y1);
        cache.emplace(key, p);
      }
      e(i, o) = p;
      sum += p;
    }
    PRISTE_CHECK_MSG(std::fabs(sum - 1.0) < 1e-6,
                     "planar Laplace cell masses do not tile the plane");
    for (size_t o = 0; o < m; ++o) e(i, o) /= sum;
  }
  auto result = hmm::EmissionMatrix::Create(std::move(e));
  PRISTE_CHECK_MSG(result.ok(), "planar Laplace emission invalid");
  return std::move(result).value();
}

}  // namespace

double PlanarLaplaceMechanism::ValidateAlpha(double alpha) {
  // Runs from the member-init list, so an invalid budget fails before any
  // emission work starts (emission_ is initialized after alpha_).
  PRISTE_CHECK_MSG(alpha >= 0.0, "planar Laplace budget must be >= 0");
  PRISTE_CHECK_MSG(std::isfinite(alpha), "planar Laplace budget must be finite");
  return alpha;
}

PlanarLaplaceMechanism::PlanarLaplaceMechanism(const geo::Grid& grid, double alpha)
    : grid_(grid),
      alpha_(ValidateAlpha(alpha)),
      // BuildEmission is a pure function of (grid geometry, α), so the
      // process-wide cache shares one matrix across every mechanism instance
      // with this key — and an evicted entry rebuilds bit-identically.
      emission_(EmissionCache::GetOrBuild(
          EmissionKey{EmissionKey::Kind::kPlanarLaplace, grid.width(),
                      grid.height(), grid.cell_size_km(), alpha_},
          [this] { return BuildEmission(grid_, alpha_); })) {}

std::string PlanarLaplaceMechanism::name() const {
  return StrFormat("%s-PLM", FormatDouble(alpha_).c_str());
}

int PlanarLaplaceMechanism::SampleContinuous(int true_cell, Rng& rng) const {
  PRISTE_CHECK(grid_.ContainsCell(true_cell));
  if (alpha_ <= 0.0) {
    return static_cast<int>(rng.NextBelow(grid_.num_cells()));
  }
  const geo::PointKm center = grid_.CenterOf(true_cell);
  const double theta = rng.Uniform(0.0, 2.0 * std::numbers::pi);
  // Radial density of the planar Laplace is r·α²·e^{−αr} ⇒ Gamma(2, 1/α).
  const double r = (rng.NextExponential(1.0) + rng.NextExponential(1.0)) / alpha_;
  const geo::PointKm sample{center.x + r * std::cos(theta),
                            center.y + r * std::sin(theta)};
  return grid_.CellContaining(sample);
}

}  // namespace priste::lppm
