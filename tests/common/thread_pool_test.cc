#include "priste/common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace priste {
namespace {

// A deterministic per-index computation with enough work that iterations
// overlap when threads are available.
double Work(size_t i) {
  double acc = static_cast<double>(i) + 1.0;
  for (int k = 0; k < 1000; ++k) {
    acc = acc * 1.0000001 + static_cast<double>(i % 7);
  }
  return acc;
}

TEST(ParallelForTest, ResultsAreIndependentOfThreadCount) {
  const size_t n = 64;
  std::vector<std::vector<double>> per_pool;
  for (const int threads : {0, 1, 2, 4}) {
    ThreadPool pool(threads);
    std::vector<double> out(n, 0.0);
    ParallelFor(pool, n, [&](size_t i) { out[i] = Work(i); });
    per_pool.push_back(std::move(out));
  }
  for (size_t p = 1; p < per_pool.size(); ++p) {
    for (size_t i = 0; i < n; ++i) {
      // Bit-identical, not just close: the computation per index is fixed.
      EXPECT_EQ(per_pool[0][i], per_pool[p][i]) << "pool=" << p << " i=" << i;
    }
  }
}

TEST(ParallelForTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 500;
  std::vector<std::atomic<int>> counts(n);
  for (auto& c : counts) c.store(0);
  ParallelFor(pool, n, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ParallelForTest, HandlesDegenerateSizes) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(pool, 0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(pool, 1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, ZeroThreadPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  std::vector<double> out(8, 0.0);
  ParallelFor(pool, out.size(), [&](size_t i) { out[i] = Work(i); });
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], Work(i));
}

TEST(ParallelForTest, NestedLoopsDoNotDeadlock) {
  // Inner parallel sections run on the same pool as the outer one; the
  // caller-participates design guarantees progress even when every worker
  // is already busy with outer iterations.
  ThreadPool pool(3);
  const size_t outer = 8, inner = 8;
  std::vector<double> out(outer * inner, 0.0);
  ParallelFor(pool, outer, [&](size_t i) {
    ParallelFor(pool, inner, [&](size_t j) { out[i * inner + j] = Work(i * inner + j); });
  });
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], Work(i));
}

TEST(ThreadPoolTest, SubmitExecutesTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPoolTest, ShutdownDrainsQueueAndRejectsLateSubmit) {
  std::atomic<int> done{0};
  ThreadPool pool(2);
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(pool.Submit([&done] { done.fetch_add(1); }));
  }
  pool.Shutdown();
  // Every task accepted before Shutdown() ran to completion (workers drain
  // the queue before exiting), and the pool reports itself empty.
  EXPECT_EQ(done.load(), 16);
  EXPECT_EQ(pool.num_threads(), 0);
  // Submit after shutdown fails cleanly: no execution, no retained task.
  EXPECT_FALSE(pool.Submit([&done] { done.fetch_add(1); }));
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();  // second call joins nothing and must not hang or crash
  EXPECT_FALSE(pool.Submit([] {}));
  // The destructor calls Shutdown() a third time on scope exit.
}

TEST(ThreadPoolTest, ParallelForAfterShutdownRunsInline) {
  ThreadPool pool(4);
  pool.Shutdown();
  // num_threads() is 0 after shutdown and helper submissions are rejected,
  // so the caller executes every iteration itself — completion, not
  // deadlock, is the contract.
  const size_t n = 64;
  std::vector<std::atomic<int>> counts(n);
  for (auto& c : counts) c.store(0);
  ParallelFor(pool, n, [&](size_t i) { counts[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForFromWorkerDuringShutdownCompletes) {
  // A worker task that itself calls ParallelFor while the pool is being
  // shut down must complete: rejected helper submissions leave all
  // iterations to the calling (worker) thread, so Shutdown()'s join cannot
  // deadlock against it.
  std::atomic<int> inner_done{0};
  std::atomic<bool> task_ran{false};
  ThreadPool pool(2);
  pool.Submit([&] {
    ParallelFor(pool, 32, [&](size_t) { inner_done.fetch_add(1); });
    task_ran.store(true);
  });
  pool.Shutdown();  // races with the worker's ParallelFor on purpose
  EXPECT_TRUE(task_ran.load());
  EXPECT_EQ(inner_done.load(), 32);
}

TEST(ThreadPoolTest, DefaultThreadCountHonoursEnv) {
  const char* saved = std::getenv("PRISTE_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";

  setenv("PRISTE_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3);
  setenv("PRISTE_THREADS", "0", 1);  // invalid → hardware fallback
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
  unsetenv("PRISTE_THREADS");
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);

  // Strict parsing: "4x" used to slide through atoi as 4 threads, "abc" as
  // 0 — both now warn and fall back to hardware concurrency.
  const int fallback = ThreadPool::DefaultThreadCount();
  setenv("PRISTE_THREADS", "4x", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), fallback);
  setenv("PRISTE_THREADS", "abc", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), fallback);
  setenv("PRISTE_THREADS", "-2", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), fallback);
  unsetenv("PRISTE_THREADS");

  if (saved != nullptr) setenv("PRISTE_THREADS", saved_value.c_str(), 1);
}

}  // namespace
}  // namespace priste
