#ifndef PRISTE_CORE_RELEASE_STEP_H_
#define PRISTE_CORE_RELEASE_STEP_H_

#include <vector>

#include "priste/core/event_model.h"
#include "priste/core/qp_solver.h"
#include "priste/core/quantifier.h"
#include "priste/linalg/sparse_vector.h"
#include "priste/linalg/vector.h"

namespace priste::core {

/// Knobs for the release-step evaluation engine (Section IV-C's inner loop).
struct ReleaseStepOptions {
  /// Incrementally extend the lifted chain's prefix products across
  /// timestamps instead of recomputing every Theorem-vector chain from t = 1.
  /// Engages when the first released emission column is sparse (see
  /// max_cache_support); the dense case falls back to the cold chain, which
  /// is cheaper there.
  bool prefix_cache = true;
  /// The prefix cache maintains one lifted row per support cell of the first
  /// emission column (b̄/c̄ are supported there for the whole run, which is
  /// what makes the contraction sparse). Above this support size the rows
  /// cost more than the cold chain — fall back.
  size_t max_cache_support = 64;
  /// Thread QpSolver::WarmState bundles through the QP checks: the
  /// emission-support union is memoized once per release step, the previous
  /// candidate's optimal π seeds the next maximization, and slice bases chain
  /// across solves. Also requires the solver's Options.warm_start.
  bool warm_start = true;
};

/// Counters the engine accumulates over a run (cheap; always collected).
struct ReleaseStepDiagnostics {
  /// Theorem-vector computations served by the incremental prefix rows.
  long cached_checks = 0;
  /// Theorem-vector computations recomputed from t = 1 (cold chain).
  long cold_checks = 0;
  /// Lifted row-extension steps applied at commits (per model, per support
  /// cell).
  long prefix_extensions = 0;
  /// QP checks whose both condition maximizations reused the memoized
  /// support frame.
  long qp_support_hits = 0;
  /// Slice LPs solved from an accepted warm basis / rejected into the cold
  /// fallback, summed over all QP checks.
  long warm_accepted_slices = 0;
  long warm_rejected_slices = 0;
};

/// Aggregate outcome of checking one candidate column against every event
/// model (early exit on the first failing model, like the release loops).
struct ReleaseCheckOutcome {
  bool all_satisfied = false;
  /// True when the failing model's check timed out (conservative release).
  bool timed_out = false;
  /// Per-model results in model order; truncated after the failing model.
  std::vector<PrivacyCheckResult> per_model;
};

/// The release-step evaluation engine: owns, per event model, the quantifier,
/// the incremental Theorem-vector state, and the QP warm-start bundle, and
/// serves every candidate check of Algorithm 2/3's budget-halving search.
///
/// The incremental state exploits the structure of the Lemma III.2/III.3
/// chain: ContractColumn reads a lifted column only through the first
/// observation's emission product, so b̄ and c̄ are supported on supp(p̃_{o_1})
/// for the *entire* run, and each support cell s contributes
///
///   b̄_s = s_1·p̃_{o_1}[s] · ( r_s · seed ),   r_s = Cᵀe_s · M_1 D_2 … M_{t−1} D_t
///
/// where the lifted row r_s extends by one StepRow + one emission product per
/// *accepted* timestamp — shared by every candidate of the next release step,
/// which then costs O(support · nnz(candidate)) instead of a full O(t) chain
/// per check. Past the event window a second, accepting-masked row family
/// yields b̄ while the unmasked family yields c̄ (Eqs. 19/20). Numerical
/// agreement with the cold chain is ≤ 1e-9 at every prefix (tested).
///
/// Not thread-safe; create one per Run().
class ReleaseStepContext {
 public:
  /// `models` and `solver` must outlive the context. `normalize_emissions`
  /// mirrors PrivacyQuantifier's knob (must match what the cold path would
  /// use).
  ReleaseStepContext(std::vector<const LiftedEventModel*> models,
                     const QpSolver* solver, bool normalize_emissions = true,
                     ReleaseStepOptions options = {});

  /// Number of accepted (committed) release columns so far.
  int committed_steps() const { return t_; }

  const ReleaseStepDiagnostics& diagnostics() const { return diagnostics_; }
  const ReleaseStepOptions& options() const { return options_; }

  /// Evaluates `column` as the candidate emission for timestamp
  /// committed_steps() + 1 against every model, with a fresh per-model QP
  /// deadline of `qp_threshold_seconds` (non-positive = unlimited).
  ReleaseCheckOutcome CheckCandidate(const linalg::Vector& column,
                                     double epsilon,
                                     double qp_threshold_seconds);
  ReleaseCheckOutcome CheckCandidate(const linalg::SparseVector& column,
                                     double epsilon,
                                     double qp_threshold_seconds);

  /// Accepts `column` as the release for timestamp committed_steps() + 1 and
  /// extends the per-model prefix state.
  void Commit(const linalg::Vector& column);
  void Commit(const linalg::SparseVector& column);

  /// Theorem vectors for `column` as the next candidate of `model_index` —
  /// served by the cache when engaged, the cold chain otherwise. Exposed for
  /// the cached-vs-cold equivalence tests.
  TheoremVectors CandidateVectors(size_t model_index,
                                  const linalg::Vector& column);
  TheoremVectors CandidateVectors(size_t model_index,
                                  const linalg::SparseVector& column);

 private:
  // Dense-or-sparse candidate view (no ownership).
  struct ColumnView {
    const linalg::Vector* dense = nullptr;
    const linalg::SparseVector* sparse = nullptr;

    size_t size() const { return dense != nullptr ? dense->size() : sparse->size(); }
    double MaxAbs() const {
      return dense != nullptr ? dense->MaxAbs() : sparse->MaxAbs();
    }
  };

  enum class Mode { kUndecided, kCached, kCold };

  struct ModelEngine {
    explicit ModelEngine(const LiftedEventModel* m, bool normalize)
        : model(m), quantifier(m, normalize) {}

    const LiftedEventModel* model;
    PrivacyQuantifier quantifier;
    PrivacyQuantifier::QpWarmPair warm;

    // Cached-mode state: one lifted row per support cell (u = r_s above),
    // plus the accepting-masked family once the event window has been fully
    // consumed. step_rows holds StepRow(rows, t_) — computed once per
    // release step, shared by all candidates and reused by Commit.
    std::vector<linalg::Vector> rows;
    std::vector<linalg::Vector> rows_masked;
    std::vector<linalg::Vector> step_rows;
    std::vector<linalg::Vector> step_rows_masked;
    bool step_rows_ready = false;
    bool step_rows_masked_ready = false;
    // ContractColumn(ones), for the direct t = 1 formula (lazily built).
    linalg::Vector ones_contract;
    bool ones_contract_ready = false;
  };

  ReleaseCheckOutcome CheckImpl(const ColumnView& column, double epsilon,
                                double qp_threshold_seconds);
  void CommitImpl(const ColumnView& column);
  /// `candidate_in_history` marks that CheckImpl already appended the
  /// densified candidate to history_ (cold path) — once per check, not once
  /// per model.
  TheoremVectors VectorsImpl(size_t model_index, const ColumnView& column,
                             bool candidate_in_history = false);
  bool UsesCachePath() const {
    return mode_ == Mode::kCached ||
           (mode_ == Mode::kUndecided && options_.prefix_cache);
  }

  // Cached-path helpers.
  void EnsureStepRows(ModelEngine& engine, bool need_masked);
  TheoremVectors CachedVectors(ModelEngine& engine, const ColumnView& column);
  void DecideMode(const ColumnView& first_column);
  void BuildMaskedRows(ModelEngine& engine);

  double CandidateScale(const ColumnView& column) const;

  std::vector<ModelEngine> engines_;
  const QpSolver* solver_;
  bool normalize_emissions_;
  ReleaseStepOptions options_;
  ReleaseStepDiagnostics diagnostics_;

  Mode mode_ = Mode::kUndecided;
  int t_ = 0;  // committed timestamps
  // Shared across models: the committed first column's support (map states,
  // sorted) and its scaled values s_1·p̃_{o_1}[s] (cached mode only).
  std::vector<size_t> support_;
  std::vector<double> support_scale_;
  // Cold-mode committed history (dense, exactly what the cold chain takes).
  std::vector<linalg::Vector> history_;
};

}  // namespace priste::core

#endif  // PRISTE_CORE_RELEASE_STEP_H_
