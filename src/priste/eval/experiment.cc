#include "priste/eval/experiment.h"

#include "priste/common/check.h"
#include "priste/common/metrics.h"
#include "priste/common/strings.h"
#include "priste/common/thread_pool.h"
#include "priste/eval/metrics.h"

namespace priste::eval {

ExperimentScale ExperimentScale::FromEnv() {
  ExperimentScale scale;
  // Strict full-string parses ("1x" and "abc" warn and fall back; atoi used
  // to read them as 1 and 0 silently).
  if (ReadIntEnv("PRISTE_FULL", 0) != 0) {
    scale.full = true;
    scale.grid_width = 20;
    scale.grid_height = 20;
    scale.horizon = 50;
    scale.runs = 100;
  }
  scale.runs = ReadIntEnv("PRISTE_RUNS", scale.runs, /*min_value=*/1);
  PRISTE_CHECK(scale.runs >= 1);
  return scale;
}

int ExperimentScale::MapStateCount(int paper_count, int paper_grid_cells) const {
  const int cells = grid_width * grid_height;
  if (cells == paper_grid_cells) return paper_count;
  const int mapped = (paper_count * cells + paper_grid_cells - 1) / paper_grid_cells;
  return std::max(1, mapped);
}

int ExperimentScale::MapTimestamp(int paper_t, int paper_horizon) const {
  if (horizon == paper_horizon) return paper_t;
  const int mapped = (paper_t * horizon + paper_horizon - 1) / paper_horizon;
  return std::max(1, std::min(horizon, mapped));
}

SyntheticWorkload::SyntheticWorkload(const ExperimentScale& scale, double sigma)
    : grid(scale.grid_width, scale.grid_height, 1.0), model(grid, sigma) {}

namespace {

// Per-run scalar metrics, computed inside the parallel section so the
// serial aggregation below is O(runs).
struct PerRunMetrics {
  std::vector<double> alpha_series;
  double mean_budget = 0.0;
  double euclid_km = 0.0;
  double run_seconds = 0.0;
  double conservative = 0.0;
};

template <typename RunFn>
RepeatedRunStats RepeatRuns(const markov::MarkovChain& chain, const geo::Grid& grid,
                            int horizon, int runs, uint64_t seed, RunFn&& run_fn) {
  // Per-run RNG streams are split serially from the master BEFORE the
  // parallel section, and the aggregation below runs serially in run order —
  // together they make the statistics bit-identical at any PRISTE_THREADS
  // value whenever the QP checks are deadline-free; a finite
  // qp_threshold_seconds reintroduces wall-clock dependence (which checks
  // time out), as it already did serially under machine load.
  Rng master(seed);
  std::vector<Rng> run_rngs;
  run_rngs.reserve(static_cast<size_t>(runs));
  for (int r = 0; r < runs; ++r) run_rngs.push_back(master.Split());

  std::vector<PerRunMetrics> per_run(static_cast<size_t>(runs));
  ParallelFor(static_cast<size_t>(runs), [&](size_t r) {
    Rng run_rng = run_rngs[r];
    const geo::Trajectory truth(chain.Sample(horizon, run_rng));
    const Result<core::RunResult> result = run_fn(truth, run_rng);
    PRISTE_CHECK_MSG(result.ok(), result.status().ToString().c_str());
    const core::RunResult& run = *result;
    per_run[r].alpha_series = AlphaSeries(run);
    per_run[r].mean_budget = MeanReleasedAlpha(run);
    per_run[r].euclid_km = MeanEuclideanErrorKm(truth, run, grid);
    per_run[r].run_seconds = run.total_seconds;
    per_run[r].conservative = static_cast<double>(run.total_conservative);
  });

  RepeatedRunStats stats;
  for (const PerRunMetrics& run : per_run) {
    stats.budget_per_timestamp.AddSeries(run.alpha_series);
    stats.mean_budget.Add(run.mean_budget);
    stats.euclid_km.Add(run.euclid_km);
    stats.run_seconds.Add(run.run_seconds);
    stats.conservative_releases.Add(run.conservative);
  }
  return stats;
}

}  // namespace

RepeatedRunStats RunRepeatedGeoInd(const geo::Grid& grid,
                                   const markov::MarkovChain& chain,
                                   const std::vector<event::EventPtr>& events,
                                   const core::PristeOptions& options,
                                   const ExperimentScale& scale, uint64_t seed) {
  const core::PristeGeoInd priste(grid, chain.transition(), events, options);
  return RepeatRuns(chain, grid, scale.horizon, scale.runs, seed,
                    [&priste](const geo::Trajectory& truth, Rng& rng) {
                      return priste.Run(truth, rng);
                    });
}

RepeatedRunStats RunRepeatedDeltaLoc(const geo::Grid& grid,
                                     const markov::MarkovChain& chain,
                                     const std::vector<event::EventPtr>& events,
                                     double delta,
                                     const core::PristeOptions& options,
                                     const ExperimentScale& scale, uint64_t seed) {
  const core::PristeDeltaLoc priste(grid, chain.transition(), events, delta,
                                    chain.initial(), options);
  return RepeatRuns(chain, grid, scale.horizon, scale.runs, seed,
                    [&priste](const geo::Trajectory& truth, Rng& rng) {
                      return priste.Run(truth, rng);
                    });
}

core::PristeOptions DefaultBenchOptions(double epsilon, double alpha) {
  core::PristeOptions options;
  options.epsilon = epsilon;
  options.initial_alpha = alpha;
  options.qp_threshold_seconds = 1.0;
  // Bench-friendly QP effort; escalation still densifies near the boundary.
  options.qp.grid_points = 33;
  options.qp.refine_iters = 12;
  options.qp.pga_restarts = 2;
  options.qp.pga_iters = 60;
  return options;
}

std::string RuntimeMetricsSummary() {
  return MetricsRegistry::Global().Render();
}

}  // namespace priste::eval
