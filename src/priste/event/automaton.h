#ifndef PRISTE_EVENT_AUTOMATON_H_
#define PRISTE_EVENT_AUTOMATON_H_

#include <string>
#include <vector>

#include "priste/common/status.h"
#include "priste/event/boolean_expr.h"

namespace priste::event {

/// Compiles an ARBITRARY Boolean spatiotemporal event — any BoolExpr over
/// (location, time) predicates — into a deterministic automaton that
/// consumes the user's map state at each window timestamp.
///
/// This generalizes the paper's two-possible-world method (which covers
/// PRESENCE and PATTERN) to the full event language of Definition II.1:
/// secrets like "visited the clinic on at least two days" or "was at A and
/// NOT at B afterwards" compile to small automata, and the lifted-chain
/// machinery (core::AutomatonWorldModel) then computes priors, joints and
/// Theorem IV.1 checks for them with the same per-timestep cost profile.
///
/// States are residual Boolean functions: after consuming the states at
/// timestamps start..t, the automaton state is the original expression
/// partially evaluated on that prefix, canonicalized by constant folding,
/// AND/OR flattening, literal deduplication and child sorting. Distinct
/// canonical forms may denote equal functions (the reduction is not BDD-
/// exact), which can only add states — never wrong transitions. Compilation
/// fails with ResourceExhausted past `max_states`.
class EventAutomaton {
 public:
  /// `num_states` is the map size m (predicates must reference states
  /// < num_states and timestamps >= 1). The expression must contain at
  /// least one predicate.
  static StatusOr<EventAutomaton> Compile(const BoolExpr& expr, size_t num_states,
                                          int max_states = 512);

  /// First / last timestamp the expression references.
  int start() const { return start_; }
  int end() const { return end_; }

  size_t num_map_states() const { return num_map_states_; }
  int num_automaton_states() const { return static_cast<int>(accepting_.size()); }
  int initial_state() const { return initial_; }

  /// δ(q, t, s): the successor when the user is at map state s at window
  /// timestamp t ∈ [start, end].
  int Next(int q, int t, int map_state) const;

  /// True for the constant-TRUE sink — the "event happened" world. Every
  /// state reachable after consuming timestamp `end` is constant.
  bool IsAccepting(int q) const;

  /// Runs the automaton over a trajectory covering the window; must agree
  /// with BoolExpr::Evaluate (property-tested).
  bool Accepts(const geo::Trajectory& trajectory) const;

  /// Canonical label of state q (diagnostics).
  const std::string& StateLabel(int q) const;

 private:
  EventAutomaton() = default;

  int start_ = 0;
  int end_ = 0;
  size_t num_map_states_ = 0;
  int initial_ = 0;
  // transitions_[t - start][q * m + s] = successor state.
  std::vector<std::vector<int>> transitions_;
  std::vector<bool> accepting_;
  std::vector<std::string> labels_;
};

}  // namespace priste::event

#endif  // PRISTE_EVENT_AUTOMATON_H_
