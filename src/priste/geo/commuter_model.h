#ifndef PRISTE_GEO_COMMUTER_MODEL_H_
#define PRISTE_GEO_COMMUTER_MODEL_H_

#include <vector>

#include "priste/common/random.h"
#include "priste/geo/grid.h"
#include "priste/geo/trajectory.h"
#include "priste/markov/markov_chain.h"

namespace priste::geo {

/// Geolife substitute (see DESIGN.md §1): a home/work commuter simulator that
/// produces long GPS-like cell trajectories with strong periodic structure —
/// the property of the Geolife data that the paper's evaluation actually
/// relies on. A simulated day alternates dwell phases at "home" and "work"
/// anchor cells with noisy shortest-path commutes between them, plus
/// occasional excursions to random errand cells.
///
/// The intended pipeline mirrors the paper's: generate trajectories →
/// markov::EstimateTransitionMatrix (the R `markovchain` step) → PriSTE.
class CommuterTrajectoryModel {
 public:
  struct Options {
    /// Number of timestamps spent dwelling at an anchor before commuting.
    int dwell_steps = 8;
    /// Probability of stepping off the shortest path during a commute.
    double route_noise = 0.25;
    /// Probability per day of a detour to a random errand cell.
    double excursion_prob = 0.2;
    /// Probability of jittering to a neighbouring cell while dwelling.
    double dwell_jitter = 0.15;
  };

  /// Anchors are chosen pseudo-randomly from `seed_rng` in opposite grid
  /// quadrants so commutes traverse a meaningful distance.
  CommuterTrajectoryModel(Grid grid, Options options, Rng& seed_rng);

  const Grid& grid() const { return grid_; }
  int home_cell() const { return home_; }
  int work_cell() const { return work_; }

  /// Samples one trajectory covering `days` simulated days (each day is
  /// 2·dwell_steps + two commutes long, variable due to route noise).
  Trajectory SampleDays(int days, Rng& rng) const;

  /// Convenience: samples `count` trajectories as raw state sequences,
  /// ready for markov::EstimateTransitionMatrix.
  std::vector<std::vector<int>> SampleTrainingSet(int count, int days, Rng& rng) const;

 private:
  /// One noisy step from `from` towards `target` (8-neighbourhood).
  int StepTowards(int from, int target, Rng& rng) const;
  /// A uniformly random neighbour (including staying).
  int JitterStep(int from, Rng& rng) const;

  Grid grid_;
  Options options_;
  int home_;
  int work_;
};

}  // namespace priste::geo

#endif  // PRISTE_GEO_COMMUTER_MODEL_H_
