// Commuter scenario (the paper's motivating example): a user commutes
// between home and work every day; the secret is the commuting PATTERN
// "left the home area and was at the work area later in the morning" — an
// attacker who learns it can infer the home/work pair (Golle & Partridge).
//
// The pipeline mirrors the paper's Geolife evaluation:
//   trajectories → Markov training (R `markovchain` equivalent) →
//   event definition → PriSTE (Algorithm 2) → utility report.
//
// Build & run:  ./build/examples/commuter_privacy
#include <cmath>
#include <cstdio>
#include <memory>

#include "priste/core/joint.h"
#include "priste/core/priste_geo_ind.h"
#include "priste/event/pattern.h"
#include "priste/eval/metrics.h"
#include "priste/geo/commuter_model.h"
#include "priste/markov/estimator.h"

namespace {

priste::geo::Region Neighbourhood(const priste::geo::Grid& grid, int anchor) {
  priste::geo::Region region(grid.num_cells());
  for (int dc = -1; dc <= 1; ++dc) {
    for (int dr = -1; dr <= 1; ++dr) {
      const int col = grid.ColOf(anchor) + dc;
      const int row = grid.RowOf(anchor) + dr;
      if (grid.Contains(col, row)) region.Add(grid.CellOf(col, row));
    }
  }
  return region;
}

}  // namespace

int main() {
  using namespace priste;
  Rng rng(42);

  // --- Simulated GPS history and Markov training. --------------------
  const geo::Grid grid(8, 8, 1.0);
  const geo::CommuterTrajectoryModel commuter(grid, {}, rng);
  std::printf("home cell: %d, work cell: %d\n", commuter.home_cell(),
              commuter.work_cell());

  const auto history = commuter.SampleTrainingSet(/*count=*/20, /*days=*/4, rng);
  const auto chain =
      markov::EstimateTransitionMatrix(history, grid.num_cells(), 0.01);
  if (!chain.ok()) {
    std::printf("training failed: %s\n", chain.status().ToString().c_str());
    return 1;
  }

  // --- The commuting PATTERN secret. ---------------------------------
  // "Near home at t=2, near work at t=6" (Definition II.3; Fig. 1(e)).
  std::vector<geo::Region> regions;
  const geo::Region home_area = Neighbourhood(grid, commuter.home_cell());
  const geo::Region work_area = Neighbourhood(grid, commuter.work_cell());
  const geo::Region anywhere = home_area.Complement().Union(home_area);
  regions.push_back(home_area);   // t = 2
  regions.push_back(anywhere);    // t = 3 (no constraint)
  regions.push_back(anywhere);    // t = 4
  regions.push_back(anywhere);    // t = 5
  regions.push_back(work_area);   // t = 6
  const auto event = std::make_shared<event::PatternEvent>(regions, /*start=*/2);
  std::printf("protecting commuting pattern home@t2 -> work@t6\n");

  // --- PriSTE release. ------------------------------------------------
  core::PristeOptions options;
  options.epsilon = 0.8;
  options.initial_alpha = 0.7;
  const core::PristeGeoInd priste(grid, *chain, {event}, options);

  // One "morning" of real movement, sampled from the commuter simulator.
  const std::vector<int> day = commuter.SampleDays(1, rng).states();
  const geo::Trajectory truth(std::vector<int>(day.begin(), day.begin() + 10));
  const auto result = priste.Run(truth, rng);
  if (!result.ok()) {
    std::printf("run failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nmean released budget : %.4f (initial %.2f)\n",
              eval::MeanReleasedAlpha(*result), options.initial_alpha);
  std::printf("mean euclid error    : %.3f km\n",
              eval::MeanEuclideanErrorKm(truth, *result, grid));
  std::printf("budget halvings      : %d\n", eval::TotalHalvings(*result));

  // --- Audit under the uniform attacker prior. ------------------------
  const core::TwoWorldModel model(*chain, event);
  core::JointCalculator audit(&model,
                              linalg::Vector::UniformProbability(grid.num_cells()));
  double worst = 0.0;
  for (const auto& step : result->steps) {
    const lppm::PlanarLaplaceMechanism mech(grid, step.released_alpha);
    audit.Push(mech.emission().EmissionColumn(step.released_cell));
    worst = std::max(worst, std::fabs(std::log(audit.LikelihoodRatio())));
  }
  std::printf("worst |ln ratio|     : %.4f <= ε = %.2f : %s\n", worst,
              options.epsilon, worst <= options.epsilon + 1e-9 ? "OK" : "FAIL");
  return 0;
}
