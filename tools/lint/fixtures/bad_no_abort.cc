// Seeded-bad fixture for priste_callgraph --self-test.
//
// PRISTE_NO_ABORT entry points must not reach a process abort on any path.
// Three violations:
//   ParseField   -> CheckedAt          reaches PRISTE_CHECK   (depth 1)
//   LoadRecord   -> ParseOrDie -> Die  reaches std::abort()   (depth 2)
//   HandleFlag                          throws directly        (depth 0)
// PRISTE_DCHECK is permitted (NDEBUG serving builds compile it away): the
// DebugAt helper must NOT produce a finding.
// Expected: 3 no-abort-reachable findings.
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#define PRISTE_NO_ABORT __attribute__((annotate("priste_no_abort")))
#define PRISTE_CHECK(cond) \
  do {                     \
    if (!(cond)) std::abort(); \
  } while (false)
#define PRISTE_DCHECK(cond) \
  do {                      \
  } while (false)

namespace fixture {

int CheckedAt(const int* data, int i, int n) {
  PRISTE_CHECK(i >= 0 && i < n);
  return data[i];
}

int DebugAt(const int* data, int i, int n) {
  PRISTE_DCHECK(i >= 0 && i < n);
  return data[i];
}

[[noreturn]] void Die(const char* what) {
  std::fprintf(stderr, "%s\n", what);
  std::abort();
}

int ParseOrDie(const char* s) {
  if (s == nullptr) Die("null field");
  return *s - '0';
}

// Violation 1: reaches PRISTE_CHECK through CheckedAt.
PRISTE_NO_ABORT int ParseField(const int* data, int i, int n) {
  return CheckedAt(data, i, n);
}

// Clean control: DCHECK-only callee, no finding.
PRISTE_NO_ABORT int ParseFieldDebug(const int* data, int i, int n) {
  return DebugAt(data, i, n);
}

// Violation 2: reaches std::abort() two hops away.
PRISTE_NO_ABORT int LoadRecord(const char* s) { return ParseOrDie(s); }

// Violation 3: throws directly in the annotated body.
PRISTE_NO_ABORT int HandleFlag(int v) {
  if (v < 0) throw std::invalid_argument("negative flag");
  return v;
}

}  // namespace fixture
