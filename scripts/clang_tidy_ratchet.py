#!/usr/bin/env python3
"""clang-tidy ratchet: warning counts may only go down.

Runs run-clang-tidy over the first-party TUs in compile_commands.json,
aggregates warnings per check, and compares against the checked-in baseline
(tools/lint/clang_tidy_baseline.json):

  - a check whose count EXCEEDS its baseline fails the build;
  - a check absent from the baseline with a nonzero count fails the build
    (new checks start at zero allowance);
  - counts BELOW baseline print a reminder to ratchet down.

Usage:
  scripts/clang_tidy_ratchet.py --compile-commands build/compile_commands.json
  scripts/clang_tidy_ratchet.py ... --update   # rewrite baseline to current

The baseline ships at all-zeros: the tree is tidy-clean under the profile in
.clang-tidy, and this script exists so it stays that way. Raising a baseline
number is a code-review decision, never an automated one.
"""

import argparse
import collections
import json
import os
import re
import shutil
import subprocess
import sys

BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        os.pardir, "tools", "lint",
                        "clang_tidy_baseline.json")

# clang-tidy diagnostic line:  path:line:col: warning: ... [check-name]
DIAG_RE = re.compile(r"^(?P<path>[^:\s][^:]*):\d+:\d+:\s+warning:.*"
                     r"\[(?P<check>[A-Za-z0-9.,\-]+)\]\s*$")


def find_runner():
    for name in ("run-clang-tidy", "run-clang-tidy.py",
                 "run-clang-tidy-18", "run-clang-tidy-17",
                 "run-clang-tidy-16", "run-clang-tidy-15",
                 "run-clang-tidy-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def collect_counts(compile_commands, src_filter):
    runner = find_runner()
    build_dir = os.path.dirname(os.path.abspath(compile_commands))
    if runner:
        cmd = [runner, "-p", build_dir, "-quiet", src_filter]
    else:
        tidy = shutil.which("clang-tidy")
        if not tidy:
            print("clang_tidy_ratchet: clang-tidy not found on PATH",
                  file=sys.stderr)
            return None
        with open(compile_commands, encoding="utf-8") as f:
            db = json.load(f)
        files = sorted({e["file"] for e in db
                        if re.search(src_filter, e["file"])})
        cmd = [tidy, "-p", build_dir, "-quiet"] + files
    proc = subprocess.run(cmd, capture_output=True, text=True)
    counts = collections.Counter()
    seen = set()  # (path, line, check) dedup: headers repeat across TUs
    for line in proc.stdout.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        key = (m.group("path"), line, m.group("check"))
        if key in seen:
            continue
        seen.add(key)
        for check in m.group("check").split(","):
            counts[check] += 1
    # run-clang-tidy exits nonzero when any warning fired; only a hard
    # infrastructure failure (no output at all AND nonzero exit) is an error.
    if proc.returncode != 0 and not proc.stdout.strip():
        print(proc.stderr, file=sys.stderr)
        print("clang_tidy_ratchet: clang-tidy failed to run",
              file=sys.stderr)
        return None
    return counts


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--compile-commands", required=True)
    parser.add_argument("--src-filter", default=r"src/priste/.*\.cc$")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline to current counts")
    args = parser.parse_args()

    counts = collect_counts(args.compile_commands, args.src_filter)
    if counts is None:
        return 2

    with open(BASELINE, encoding="utf-8") as f:
        baseline = json.load(f)["allowed"]

    if args.update:
        payload = {
            "_comment": "Per-check clang-tidy warning allowance. Counts only "
                        "go DOWN; raising one is a code-review decision.",
            "allowed": {k: v for k, v in sorted(counts.items())},
        }
        with open(BASELINE, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"clang_tidy_ratchet: baseline rewritten "
              f"({sum(counts.values())} warnings)")
        return 0

    failed = False
    for check, n in sorted(counts.items()):
        allowed = baseline.get(check, 0)
        if n > allowed:
            print(f"RATCHET FAIL {check}: {n} > allowed {allowed}")
            failed = True
        elif n < allowed:
            print(f"ratchet: {check} improved ({n} < {allowed}) — "
                  f"run with --update to lock it in")
    for check, allowed in sorted(baseline.items()):
        if allowed > 0 and counts.get(check, 0) < allowed and check not in counts:
            print(f"ratchet: {check} now clean (0 < {allowed}) — "
                  f"run with --update to lock it in")
    if failed:
        return 1
    print(f"clang_tidy_ratchet: OK "
          f"({sum(counts.values())} warnings within baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
