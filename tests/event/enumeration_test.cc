#include "priste/event/enumeration.h"

#include <gtest/gtest.h>

#include "priste/event/pattern.h"
#include "priste/event/presence.h"
#include "testing/test_util.h"

namespace priste::event {
namespace {

TEST(EnumerationTest, CountsAllTrajectories) {
  int count = 0;
  ForEachTrajectory(3, 4, [&count](const geo::Trajectory&) { ++count; });
  EXPECT_EQ(count, 81);  // 3^4
}

TEST(EnumerationTest, TrajectoriesAreDistinctAndInRange) {
  std::vector<std::vector<int>> seen;
  ForEachTrajectory(2, 3, [&seen](const geo::Trajectory& t) {
    for (int s : t.states()) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, 2);
    }
    seen.push_back(t.states());
  });
  EXPECT_EQ(seen.size(), 8u);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(EnumerationTest, PriorOfTautologyIsOne) {
  Rng rng(3);
  const markov::MarkovChain chain(testing::RandomTransition(3, rng),
                                  testing::RandomProbability(3, rng));
  EXPECT_NEAR(EnumeratePrior(chain, *BoolExpr::Constant(true), 3), 1.0, 1e-12);
  EXPECT_NEAR(EnumeratePrior(chain, *BoolExpr::Constant(false), 3), 0.0, 1e-12);
}

TEST(EnumerationTest, PriorOfSinglePredicateIsMarginal) {
  Rng rng(5);
  const markov::MarkovChain chain(testing::RandomTransition(3, rng),
                                  testing::RandomProbability(3, rng));
  const double prior = EnumeratePrior(chain, *BoolExpr::Pred(2, 1), 2);
  EXPECT_NEAR(prior, chain.MarginalAt(2)[1], 1e-12);
}

TEST(EnumerationTest, JointOfTautologyIsObservationLikelihood) {
  Rng rng(7);
  const markov::MarkovChain chain(testing::RandomTransition(2, rng),
                                  testing::RandomProbability(2, rng));
  const std::vector<linalg::Vector> emissions = {
      testing::RandomEmissionColumn(2, rng), testing::RandomEmissionColumn(2, rng)};
  const double joint_true = EnumerateJoint(chain, *BoolExpr::Constant(true), emissions);
  const double joint_pred =
      EnumerateJoint(chain, *BoolExpr::Pred(1, 0), emissions) +
      EnumerateJoint(chain, *BoolExpr::Pred(1, 1), emissions);
  EXPECT_NEAR(joint_true, joint_pred, 1e-12);
}

TEST(EnumerationTest, SatisfyingWindowPathsFig15Has24) {
  // Fig. 15: regions of width 2 at four window timestamps → 2^4 = ... the
  // paper counts 24 because region overlaps share states; with our regions
  // {s1,s2},{s2,s3},{s1,s2},{s2,s3} the raw path count is 2·2·2·2 = 16 of
  // which all are valid window paths. The paper's 24 counts map trajectories
  // over 3 states with extra free timestamps; here we check the window-path
  // semantics directly.
  const PatternEvent ev({geo::Region(3, {0, 1}), geo::Region(3, {1, 2}),
                         geo::Region(3, {0, 1}), geo::Region(3, {1, 2})},
                        2);
  const auto paths = SatisfyingWindowPaths(ev);
  EXPECT_EQ(paths.size(), 16u);
  for (const auto& p : paths) {
    ASSERT_EQ(p.size(), 4u);
    EXPECT_TRUE(p[0] == 0 || p[0] == 1);
    EXPECT_TRUE(p[1] == 1 || p[1] == 2);
  }
}

TEST(EnumerationTest, WindowPathCountIsProductOfWidths) {
  const PatternEvent ev({geo::Region(5, {0, 1, 2}), geo::Region(5, {3, 4})}, 1);
  EXPECT_EQ(SatisfyingWindowPaths(ev).size(), 6u);
}

}  // namespace
}  // namespace priste::event
