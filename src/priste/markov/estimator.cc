#include "priste/markov/estimator.h"

#include "priste/common/strings.h"

namespace priste::markov {
namespace {

Status ValidateStates(const std::vector<std::vector<int>>& trajectories,
                      size_t num_states) {
  if (num_states == 0) return Status::InvalidArgument("num_states must be positive");
  for (const auto& traj : trajectories) {
    for (int s : traj) {
      if (s < 0 || static_cast<size_t>(s) >= num_states) {
        return Status::OutOfRange(
            StrFormat("state %d outside [0, %zu)", s, num_states));
      }
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<TransitionMatrix> EstimateTransitionMatrix(
    const std::vector<std::vector<int>>& trajectories, size_t num_states,
    double smoothing) {
  PRISTE_RETURN_IF_ERROR(ValidateStates(trajectories, num_states));
  if (smoothing < 0.0) return Status::InvalidArgument("smoothing must be >= 0");

  linalg::Matrix counts(num_states, num_states, smoothing);
  for (const auto& traj : trajectories) {
    for (size_t i = 1; i < traj.size(); ++i) {
      counts(static_cast<size_t>(traj[i - 1]), static_cast<size_t>(traj[i])) += 1.0;
    }
  }
  for (size_t r = 0; r < num_states; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < num_states; ++c) sum += counts(r, c);
    if (sum <= 0.0) {
      // No outgoing observations and no smoothing: fall back to uniform.
      for (size_t c = 0; c < num_states; ++c) {
        counts(r, c) = 1.0 / static_cast<double>(num_states);
      }
    } else {
      for (size_t c = 0; c < num_states; ++c) counts(r, c) /= sum;
    }
  }
  return TransitionMatrix::Create(std::move(counts));
}

StatusOr<linalg::Vector> EstimateInitialDistribution(
    const std::vector<std::vector<int>>& trajectories, size_t num_states,
    double smoothing) {
  PRISTE_RETURN_IF_ERROR(ValidateStates(trajectories, num_states));
  if (smoothing < 0.0) return Status::InvalidArgument("smoothing must be >= 0");

  linalg::Vector counts(num_states, smoothing);
  for (const auto& traj : trajectories) {
    if (!traj.empty()) counts[static_cast<size_t>(traj[0])] += 1.0;
  }
  const double total = counts.Sum();
  if (total <= 0.0) return linalg::Vector::UniformProbability(num_states);
  counts.ScaleInPlace(1.0 / total);
  return counts;
}

}  // namespace priste::markov
