#include "priste/common/strings.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace priste {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  std::string s = StrFormat("%.*g", digits, value);
  return s;
}

bool ParseInt32(const std::string& s, int* out) {
  if (s.empty()) return false;
  long long value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
    if (value > std::numeric_limits<int>::max()) return false;
  }
  *out = static_cast<int>(value);
  return true;
}

bool ParseUint64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
      return false;
    }
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  // Shape check first: strtod accepts "inf", "nan", hex-floats, and leading
  // whitespace, none of which belong in a flag or CSV field. Restricting the
  // alphabet to sign/digits/'.'/decimal-exponent rejects all of those before
  // the conversion ever runs.
  size_t i = 0;
  if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
  size_t mantissa_digits = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    ++mantissa_digits;
    ++i;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
      ++mantissa_digits;
      ++i;
    }
  }
  if (mantissa_digits == 0) return false;
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    size_t exponent_digits = 0;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
      ++exponent_digits;
      ++i;
    }
    if (exponent_digits == 0) return false;
  }
  if (i != s.size()) return false;

  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  // Overflow saturates to ±HUGE_VAL; "finite input text, finite value" is
  // the contract (underflow to 0/denormal is fine and passes this).
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

int ReadIntEnv(const char* name, int fallback, int min_value) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  int parsed = 0;
  if (!ParseInt32(value, &parsed) || parsed < min_value) {
    std::fprintf(stderr,
                 "priste: ignoring invalid %s=\"%s\" (want an integer >= %d); "
                 "using %d\n",
                 name, value, min_value, fallback);
    return fallback;
  }
  return parsed;
}

}  // namespace priste
