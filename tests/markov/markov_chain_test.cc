#include "priste/markov/markov_chain.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace priste::markov {
namespace {

TEST(MarkovChainTest, SampleHasRequestedLength) {
  Rng rng(3);
  const MarkovChain chain(testing::RandomTransition(4, rng),
                          linalg::Vector::UniformProbability(4));
  EXPECT_EQ(chain.Sample(10, rng).size(), 10u);
  EXPECT_EQ(chain.SampleFrom(2, 5, rng).size(), 5u);
  EXPECT_EQ(chain.SampleFrom(2, 5, rng)[0], 2);
}

TEST(MarkovChainTest, SampleStatesInRange) {
  Rng rng(5);
  const MarkovChain chain(testing::RandomTransition(3, rng),
                          linalg::Vector::UniformProbability(3));
  for (int s : chain.Sample(200, rng)) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 3);
  }
}

TEST(MarkovChainTest, MarginalMatchesEmpiricalFrequencies) {
  Rng rng(7);
  const MarkovChain chain(testing::RandomTransition(3, rng),
                          testing::RandomProbability(3, rng));
  const int runs = 50000;
  std::vector<int> counts(3, 0);
  for (int r = 0; r < runs; ++r) {
    ++counts[static_cast<size_t>(chain.Sample(4, rng)[3])];
  }
  const linalg::Vector expected = chain.MarginalAt(4);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_NEAR(counts[s] / static_cast<double>(runs), expected[s], 0.01);
  }
}

TEST(MarkovChainTest, TrajectoryProbabilityKnownValue) {
  const auto m = TransitionMatrix::Create(
      linalg::Matrix{{0.1, 0.9}, {0.4, 0.6}});
  ASSERT_TRUE(m.ok());
  const MarkovChain chain(*m, linalg::Vector{0.3, 0.7});
  EXPECT_NEAR(chain.TrajectoryProbability({0, 1, 0}), 0.3 * 0.9 * 0.4, 1e-15);
}

TEST(MarkovChainTest, TrajectoryProbabilitiesSumToOne) {
  Rng rng(11);
  const MarkovChain chain(testing::RandomTransition(3, rng),
                          testing::RandomProbability(3, rng));
  // Σ over all length-3 trajectories = 1.
  double total = 0.0;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int c = 0; c < 3; ++c) total += chain.TrajectoryProbability({a, b, c});
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

}  // namespace
}  // namespace priste::markov
