#include "priste/common/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>

#include "priste/common/check.h"
#include "priste/common/mutex.h"
#include "priste/common/strings.h"
#include "priste/common/thread_annotations.h"

namespace priste {

namespace {

// Bucket k (1 ≤ k ≤ 26) spans [2^(k−1) µs, 2^k µs); bucket 0 is < 1 µs and
// bucket 27 is everything at or beyond 2^26 µs ≈ 67 s.
constexpr int kPow2Buckets = static_cast<int>(Histogram::kNumBuckets) - 2;

size_t BucketFor(double seconds) {
  if (!(seconds > 0.0)) return 0;  // non-positive and NaN land in underflow
  const double micros = seconds * 1e6;
  if (micros < 1.0) return 0;
  const double top = std::ldexp(1.0, kPow2Buckets);  // 2^26 µs
  if (micros >= top) return Histogram::kNumBuckets - 1;
  // 1 ≤ ilogb(micros) + 1 ≤ kPow2Buckets for micros in [1, 2^26).
  return static_cast<size_t>(std::ilogb(micros)) + 1;
}

}  // namespace

void Histogram::Record(double seconds) {
  buckets_[BucketFor(seconds)].fetch_add(1, std::memory_order_relaxed);
  if (std::isfinite(seconds) && seconds > 0.0) {
    sum_nanos_.fetch_add(static_cast<int64_t>(seconds * 1e9),
                         std::memory_order_relaxed);
  }
}

long Histogram::count() const {
  long total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum_seconds() const {
  return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9;
}

double Histogram::BucketUpperBound(size_t i) {
  PRISTE_CHECK(i < kNumBuckets);
  if (i == kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i)) * 1e-6;  // 2^i µs
}

double Histogram::ApproxQuantile(double quantile) const {
  // One consistent pass: read the buckets once, derive the total from the
  // same reads.
  std::array<long, kNumBuckets> counts;
  long total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double target = std::clamp(quantile, 0.0, 1.0) * static_cast<double>(total);
  long seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) >= target && counts[i] > 0) {
      return BucketUpperBound(i);
    }
  }
  return BucketUpperBound(kNumBuckets - 1);
}

void Histogram::ResetForTest() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

struct MetricsRegistry::Impl {
  // std::map keeps snapshots name-sorted for free; metrics are held by
  // unique_ptr so references survive rehashing-free and map growth alike.
  // The registration maps are mu-guarded (machine-checked); the metrics
  // themselves are lock-free and are written through the handed-out
  // references with no lock held — only the DIRECTORY is guarded.
  Mutex mu PRISTE_LOCK_LEVEL(40);
  std::map<std::string, std::unique_ptr<Counter>> counters
      PRISTE_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Gauge>> gauges PRISTE_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Histogram>> histograms
      PRISTE_GUARDED_BY(mu);

  bool NameTaken(const std::string& name) const PRISTE_REQUIRES(mu) {
    return counters.count(name) + gauges.count(name) + histograms.count(name) >
           0;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally (same teardown argument as ThreadPool::Shared()):
  // worker threads may still publish during static destruction.
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&impl_->mu);
  auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) {
    PRISTE_CHECK_MSG(!impl_->NameTaken(name),
                     "metric name registered as a different kind");
    it = impl_->counters.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&impl_->mu);
  auto it = impl_->gauges.find(name);
  if (it == impl_->gauges.end()) {
    PRISTE_CHECK_MSG(!impl_->NameTaken(name),
                     "metric name registered as a different kind");
    it = impl_->gauges.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&impl_->mu);
  auto it = impl_->histograms.find(name);
  if (it == impl_->histograms.end()) {
    PRISTE_CHECK_MSG(!impl_->NameTaken(name),
                     "metric name registered as a different kind");
    it = impl_->histograms.emplace(name, std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  MutexLock lock(&impl_->mu);
  Snapshot snap;
  snap.counters.reserve(impl_->counters.size());
  for (const auto& [name, counter] : impl_->counters) {
    snap.counters.push_back({name, counter->value()});
  }
  snap.gauges.reserve(impl_->gauges.size());
  for (const auto& [name, gauge] : impl_->gauges) {
    snap.gauges.push_back({name, gauge->value()});
  }
  snap.histograms.reserve(impl_->histograms.size());
  for (const auto& [name, histogram] : impl_->histograms) {
    HistogramSample sample;
    sample.name = name;
    sample.count = histogram->count();
    sample.sum_seconds = histogram->sum_seconds();
    sample.p50_seconds = histogram->ApproxQuantile(0.5);
    sample.p99_seconds = histogram->ApproxQuantile(0.99);
    snap.histograms.push_back(std::move(sample));
  }
  return snap;
}

namespace {

std::string FormatSeconds(double seconds) {
  if (seconds == std::numeric_limits<double>::infinity()) return ">67s";
  if (seconds >= 1.0) return StrFormat("%.3gs", seconds);
  if (seconds >= 1e-3) return StrFormat("%.3gms", seconds * 1e3);
  return StrFormat("%.3gus", seconds * 1e6);
}

}  // namespace

std::string MetricsRegistry::Render() const {
  const Snapshot snap = TakeSnapshot();
  std::string out;
  for (const auto& c : snap.counters) {
    out += StrFormat("counter   %-40s %ld\n", c.name.c_str(), c.value);
  }
  for (const auto& g : snap.gauges) {
    out += StrFormat("gauge     %-40s %ld\n", g.name.c_str(), g.value);
  }
  for (const auto& h : snap.histograms) {
    out += StrFormat("histogram %-40s count=%ld sum=%s p50<=%s p99<=%s\n",
                     h.name.c_str(), h.count,
                     FormatSeconds(h.sum_seconds).c_str(),
                     FormatSeconds(h.p50_seconds).c_str(),
                     FormatSeconds(h.p99_seconds).c_str());
  }
  return out;
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(&impl_->mu);
  for (auto& [name, counter] : impl_->counters) counter->ResetForTest();
  for (auto& [name, gauge] : impl_->gauges) gauge->ResetForTest();
  for (auto& [name, histogram] : impl_->histograms) histogram->ResetForTest();
}

}  // namespace priste
