// Seeded-violation fixture for priste_lint --self-test. NOT compiled.
// Expected findings: 4x hot-path-alloc.
#include <cstdlib>
#include <vector>

#define PRISTE_HOT_PATH

PRISTE_HOT_PATH double Accumulate(const std::vector<double>& xs) {
  std::vector<double> copy;
  copy.reserve(xs.size());  // hot-path-alloc #1: container growth
  double sum = 0.0;
  for (double x : xs) {
    copy.push_back(x);  // hot-path-alloc #2: container growth
    sum += x;
  }
  double* scratch =
      static_cast<double*>(malloc(sizeof(double)));  // hot-path-alloc #3
  *scratch = sum;
  sum = *scratch;
  free(scratch);
  return sum;
}

// Identical code OUTSIDE a marked body must NOT fire.
double Cold(const std::vector<double>& xs) {
  std::vector<double> copy;
  copy.reserve(xs.size());
  for (double x : xs) copy.push_back(x);
  return static_cast<double>(copy.size());
}

// A marked declaration with the body elsewhere must NOT fire.
PRISTE_HOT_PATH double DeclaredOnly(const std::vector<double>& xs);

// Waiver scope ends WITH the wrapped statement it covers: the waiver spans
// the two-line malloc statement, but the push_back in the NEXT statement is
// outside its scope and must still fire.
PRISTE_HOT_PATH double WaiverScopeEnds(std::vector<double>* scratch) {
  // priste-lint: allow(hot-path-alloc) covers only this wrapped statement
  double* block = static_cast<double*>(
      malloc(sizeof(double)));
  scratch->push_back(*block);  // hot-path-alloc #4: past the waived statement
  free(block);
  return scratch->back();
}
