#ifndef PRISTE_CORE_JOINT_H_
#define PRISTE_CORE_JOINT_H_

#include <memory>
#include <vector>

#include "priste/core/event_model.h"
#include "priste/linalg/vector.h"

namespace priste::core {

/// Streaming evaluation of the joint probabilities of Lemmas III.2/III.3:
/// after pushing the emission columns p̃_{o_1}, …, p̃_{o_t} (raw
/// probabilities, one per released observation), the calculator reports
///
///   JointEvent()    = Pr(EVENT, o_1..o_t)
///   Marginal()      = Pr(o_1..o_t)
///   JointNotEvent() = Pr(¬EVENT, o_1..o_t)
///
/// in O(m²) per push by maintaining the lifted forward vector
/// α_t = [π,0] p̃ᴰ_{o_1} ∏ (M_{i−1} p̃ᴰ_{o_i}) and pairing it with the
/// model's precomputed suffix (t ≤ end) or the [0,1] mask (t > end, where
/// the worlds no longer mix). Mathematically identical to the paper's
/// Eq. (13)/(14); see the lemma cross-check tests.
class JointCalculator {
 public:
  /// `model` must outlive the calculator; `pi` is the initial distribution.
  JointCalculator(const LiftedEventModel* model, linalg::Vector pi);

  /// Advances one timestamp with the emission column of the observation
  /// released at that time.
  void Push(const linalg::Vector& emission_column);

  /// Number of observations pushed so far.
  int current_time() const { return t_; }

  double JointEvent() const;
  double Marginal() const;
  double JointNotEvent() const { return Marginal() - JointEvent(); }

  /// Pr(EVENT | o_1..o_t) — posterior of the event.
  double PosteriorEvent() const;

  /// The likelihood ratio Pr(o_1..o_t | EVENT) / Pr(o_1..o_t | ¬EVENT)
  /// whose bound defines ε-spatiotemporal event privacy (Eq. 1); requires a
  /// non-degenerate prior (0 < Pr(EVENT) < 1).
  double LikelihoodRatio() const;

 private:
  const LiftedEventModel* model_;
  linalg::Vector pi_;
  double prior_event_;
  linalg::Vector alpha_;    // lifted forward vector, size k·m
  linalg::Vector scratch_;  // step target, swapped with alpha_ per push
  int t_ = 0;
};

}  // namespace priste::core

#endif  // PRISTE_CORE_JOINT_H_
