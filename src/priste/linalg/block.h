#ifndef PRISTE_LINALG_BLOCK_H_
#define PRISTE_LINALG_BLOCK_H_

#include "priste/linalg/matrix.h"
#include "priste/linalg/vector.h"

namespace priste::linalg {

/// A 2×2 block matrix over m×m blocks, representing the paper's two-world
/// transition matrices M_t ∈ R^{2m×2m} (Equations 3–8):
///
///   M_t = [ ff  ft ]   with the block semantics of Eq. (3):
///         [ tf  tt ]   ff: ¬EVENT→¬EVENT, ft: ¬EVENT→EVENT,
///                      tf: EVENT→¬EVENT,  tt: EVENT→EVENT.
///
/// Block storage keeps matrix-vector products at O(m²) with explicit world
/// semantics; ToDense() materializes the 2m×2m matrix for oracles and tests.
class BlockMatrix2x2 {
 public:
  BlockMatrix2x2() = default;

  /// All four blocks must be m×m with the same m.
  BlockMatrix2x2(Matrix ff, Matrix ft, Matrix tf, Matrix tt);

  /// Block-diagonal [M 0; 0 M] — the paper's Eq. (5)/(8) outside-event form.
  static BlockMatrix2x2 BlockDiagonal(const Matrix& m);

  size_t block_size() const { return ff_.rows(); }
  size_t size() const { return 2 * block_size(); }

  const Matrix& ff() const { return ff_; }
  const Matrix& ft() const { return ft_; }
  const Matrix& tf() const { return tf_; }
  const Matrix& tt() const { return tt_; }

  /// M · v for a 2m column vector.
  Vector MatVec(const Vector& v) const;

  /// vᵀ · M for a 2m row vector.
  Vector VecMat(const Vector& v) const;

  /// Mᵀ · v — used by the backward recursion of Lemma III.3.
  Vector TransposedMatVec(const Vector& v) const;

  /// Materializes the dense 2m×2m matrix.
  Matrix ToDense() const;

  /// True when the dense form is row-stochastic (probability is conserved
  /// across the two worlds), within tol.
  bool IsRowStochastic(double tol = 1e-9) const;

 private:
  Matrix ff_, ft_, tf_, tt_;
};

/// Applies the two-world diagonal emission matrix p̃ᴰ_o to a 2m vector:
/// entry-wise product with [p̃_o, p̃_o] (the emission probability is
/// independent of which world the chain is in). `emission` has size m,
/// `v` has size 2m.
Vector ApplyTwoWorldDiagonal(const Vector& emission, const Vector& v);

}  // namespace priste::linalg

#endif  // PRISTE_LINALG_BLOCK_H_
