#include "priste/event/boolean_expr.h"

#include <algorithm>

#include "priste/common/check.h"
#include "priste/common/strings.h"

namespace priste::event {

BoolExpr::Ptr BoolExpr::Pred(int t, int state) {
  PRISTE_CHECK(t >= 1);
  PRISTE_CHECK(state >= 0);
  return Ptr(new BoolExpr(Kind::kPredicate, t, state, false, nullptr, nullptr));
}

BoolExpr::Ptr BoolExpr::And(Ptr a, Ptr b) {
  PRISTE_CHECK(a != nullptr && b != nullptr);
  return Ptr(new BoolExpr(Kind::kAnd, 0, 0, false, std::move(a), std::move(b)));
}

BoolExpr::Ptr BoolExpr::Or(Ptr a, Ptr b) {
  PRISTE_CHECK(a != nullptr && b != nullptr);
  return Ptr(new BoolExpr(Kind::kOr, 0, 0, false, std::move(a), std::move(b)));
}

BoolExpr::Ptr BoolExpr::Not(Ptr a) {
  PRISTE_CHECK(a != nullptr);
  return Ptr(new BoolExpr(Kind::kNot, 0, 0, false, std::move(a), nullptr));
}

BoolExpr::Ptr BoolExpr::Constant(bool value) {
  return Ptr(new BoolExpr(Kind::kConstant, 0, 0, value, nullptr, nullptr));
}

BoolExpr::Ptr BoolExpr::AndAll(const std::vector<Ptr>& terms) {
  if (terms.empty()) return Constant(true);
  Ptr acc = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) acc = And(acc, terms[i]);
  return acc;
}

BoolExpr::Ptr BoolExpr::OrAll(const std::vector<Ptr>& terms) {
  if (terms.empty()) return Constant(false);
  Ptr acc = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) acc = Or(acc, terms[i]);
  return acc;
}

int BoolExpr::pred_time() const {
  PRISTE_CHECK(kind_ == Kind::kPredicate);
  return t_;
}

int BoolExpr::pred_state() const {
  PRISTE_CHECK(kind_ == Kind::kPredicate);
  return state_;
}

bool BoolExpr::constant_value() const {
  PRISTE_CHECK(kind_ == Kind::kConstant);
  return constant_;
}

const BoolExpr& BoolExpr::left() const {
  PRISTE_CHECK(left_ != nullptr);
  return *left_;
}

const BoolExpr& BoolExpr::right() const {
  PRISTE_CHECK(right_ != nullptr);
  return *right_;
}

bool BoolExpr::Evaluate(const geo::Trajectory& trajectory) const {
  switch (kind_) {
    case Kind::kPredicate:
      PRISTE_CHECK_MSG(t_ <= trajectory.length(),
                       "predicate timestamp beyond trajectory");
      return trajectory.At(t_) == state_;
    case Kind::kAnd:
      return left_->Evaluate(trajectory) && right_->Evaluate(trajectory);
    case Kind::kOr:
      return left_->Evaluate(trajectory) || right_->Evaluate(trajectory);
    case Kind::kNot:
      return !left_->Evaluate(trajectory);
    case Kind::kConstant:
      return constant_;
  }
  return false;
}

int BoolExpr::MaxTimestamp() const {
  switch (kind_) {
    case Kind::kPredicate:
      return t_;
    case Kind::kAnd:
    case Kind::kOr:
      return std::max(left_->MaxTimestamp(), right_->MaxTimestamp());
    case Kind::kNot:
      return left_->MaxTimestamp();
    case Kind::kConstant:
      return 0;
  }
  return 0;
}

int BoolExpr::MinTimestamp() const {
  switch (kind_) {
    case Kind::kPredicate:
      return t_;
    case Kind::kAnd:
    case Kind::kOr: {
      const int l = left_->MinTimestamp();
      const int r = right_->MinTimestamp();
      if (l == 0) return r;
      if (r == 0) return l;
      return std::min(l, r);
    }
    case Kind::kNot:
      return left_->MinTimestamp();
    case Kind::kConstant:
      return 0;
  }
  return 0;
}

size_t BoolExpr::NumPredicates() const {
  switch (kind_) {
    case Kind::kPredicate:
      return 1;
    case Kind::kAnd:
    case Kind::kOr:
      return left_->NumPredicates() + right_->NumPredicates();
    case Kind::kNot:
      return left_->NumPredicates();
    case Kind::kConstant:
      return 0;
  }
  return 0;
}

std::string BoolExpr::ToString() const {
  switch (kind_) {
    case Kind::kPredicate:
      return StrFormat("(u%d=s%d)", t_, state_ + 1);
    case Kind::kAnd:
      return "(" + left_->ToString() + " & " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " | " + right_->ToString() + ")";
    case Kind::kNot:
      return "!" + left_->ToString();
    case Kind::kConstant:
      return constant_ ? "true" : "false";
  }
  return "?";
}

}  // namespace priste::event
