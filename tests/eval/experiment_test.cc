#include "priste/eval/experiment.h"

#include <cstdlib>

#include <gtest/gtest.h>

#include "priste/event/presence.h"

namespace priste::eval {
namespace {

TEST(ExperimentScaleTest, DefaultsAreReduced) {
  // Ensure env vars do not leak into this test.
  unsetenv("PRISTE_FULL");
  unsetenv("PRISTE_RUNS");
  const ExperimentScale scale = ExperimentScale::FromEnv();
  EXPECT_FALSE(scale.full);
  EXPECT_EQ(scale.grid_width, 16);
  EXPECT_EQ(scale.horizon, 30);
}

TEST(ExperimentScaleTest, EnvOverrides) {
  setenv("PRISTE_FULL", "1", 1);
  setenv("PRISTE_RUNS", "7", 1);
  const ExperimentScale scale = ExperimentScale::FromEnv();
  EXPECT_TRUE(scale.full);
  EXPECT_EQ(scale.grid_width, 20);
  EXPECT_EQ(scale.horizon, 50);
  EXPECT_EQ(scale.runs, 7);
  unsetenv("PRISTE_FULL");
  unsetenv("PRISTE_RUNS");
}

TEST(ExperimentScaleTest, FullScaleMatchesPaperDefaults) {
  unsetenv("PRISTE_RUNS");
  setenv("PRISTE_FULL", "1", 1);
  const ExperimentScale scale = ExperimentScale::FromEnv();
  EXPECT_TRUE(scale.full);
  EXPECT_EQ(scale.grid_width, 20);
  EXPECT_EQ(scale.grid_height, 20);
  EXPECT_EQ(scale.horizon, 50);
  EXPECT_EQ(scale.runs, 100);
  // Identity mappings at paper scale, as bench_common.h relies on.
  EXPECT_EQ(scale.MapStateCount(10), 10);
  EXPECT_EQ(scale.MapTimestamp(16), 16);
  unsetenv("PRISTE_FULL");
}

TEST(ExperimentScaleTest, FullZeroOrEmptyMeansReduced) {
  unsetenv("PRISTE_RUNS");
  setenv("PRISTE_FULL", "0", 1);
  EXPECT_FALSE(ExperimentScale::FromEnv().full);
  setenv("PRISTE_FULL", "", 1);
  const ExperimentScale scale = ExperimentScale::FromEnv();
  EXPECT_FALSE(scale.full);
  EXPECT_EQ(scale.grid_width, 16);
  EXPECT_EQ(scale.grid_height, 16);
  EXPECT_EQ(scale.horizon, 30);
  EXPECT_EQ(scale.runs, 3);
  unsetenv("PRISTE_FULL");
}

TEST(ExperimentScaleTest, InvalidEnvValuesFallBackStrictly) {
  // atoi read "2x" as 2 runs and "abc" as 0 runs (tripping the CHECK);
  // the strict parser warns and keeps the defaults instead.
  unsetenv("PRISTE_FULL");
  setenv("PRISTE_RUNS", "2x", 1);
  EXPECT_EQ(ExperimentScale::FromEnv().runs, 3);
  setenv("PRISTE_RUNS", "abc", 1);
  EXPECT_EQ(ExperimentScale::FromEnv().runs, 3);
  setenv("PRISTE_RUNS", "0", 1);  // parses, but runs must be >= 1
  EXPECT_EQ(ExperimentScale::FromEnv().runs, 3);
  setenv("PRISTE_RUNS", "-4", 1);
  EXPECT_EQ(ExperimentScale::FromEnv().runs, 3);
  setenv("PRISTE_FULL", "1x", 1);  // atoi: 1 → full scale; strict: reduced
  EXPECT_FALSE(ExperimentScale::FromEnv().full);
  unsetenv("PRISTE_FULL");
  unsetenv("PRISTE_RUNS");
}

TEST(ExperimentScaleTest, RunsOverrideAppliesAtReducedScale) {
  unsetenv("PRISTE_FULL");
  setenv("PRISTE_RUNS", "11", 1);
  const ExperimentScale scale = ExperimentScale::FromEnv();
  EXPECT_FALSE(scale.full);
  EXPECT_EQ(scale.grid_width, 16);
  EXPECT_EQ(scale.runs, 11);
  unsetenv("PRISTE_RUNS");
}

TEST(ExperimentScaleTest, StateAndTimeMapping) {
  ExperimentScale scale;
  scale.grid_width = 16;
  scale.grid_height = 16;
  scale.horizon = 30;
  // 10 of 400 cells → ceil(10·256/400) = 7 of 256.
  EXPECT_EQ(scale.MapStateCount(10), 7);
  // Identity at paper scale.
  scale.grid_width = scale.grid_height = 20;
  EXPECT_EQ(scale.MapStateCount(10), 10);
  // Timestamp 16 of 50 → ceil(16·30/50) = 10 of 30.
  scale.horizon = 30;
  EXPECT_EQ(scale.MapTimestamp(16), 10);
  scale.horizon = 50;
  EXPECT_EQ(scale.MapTimestamp(16), 16);
}

TEST(ExperimentTest, RepeatedGeoIndRunsAggregate) {
  ExperimentScale scale;
  scale.grid_width = 4;
  scale.grid_height = 4;
  scale.horizon = 5;
  scale.runs = 2;
  const SyntheticWorkload workload(scale, 1.0);
  const auto ev = event::PresenceEvent::Make(workload.grid.num_cells(), 1, 4, 2, 3);
  core::PristeOptions options = DefaultBenchOptions(0.8, 0.3);
  options.qp.grid_points = 9;
  const RepeatedRunStats stats = RunRepeatedGeoInd(
      workload.grid, workload.Chain(), {ev}, options, scale, /*seed=*/42);
  EXPECT_EQ(stats.mean_budget.count(), 2u);
  EXPECT_EQ(stats.budget_per_timestamp.length(), 5u);
  EXPECT_GE(stats.euclid_km.mean(), 0.0);
}

TEST(ExperimentTest, RepeatedDeltaLocRunsAggregate) {
  ExperimentScale scale;
  scale.grid_width = 4;
  scale.grid_height = 4;
  scale.horizon = 5;
  scale.runs = 2;
  const SyntheticWorkload workload(scale, 1.0);
  const auto ev = event::PresenceEvent::Make(workload.grid.num_cells(), 1, 4, 2, 3);
  core::PristeOptions options = DefaultBenchOptions(0.8, 0.3);
  options.qp.grid_points = 9;
  const RepeatedRunStats stats = RunRepeatedDeltaLoc(
      workload.grid, workload.Chain(), {ev}, 0.3, options, scale, /*seed=*/43);
  EXPECT_EQ(stats.mean_budget.count(), 2u);
  EXPECT_EQ(stats.budget_per_timestamp.length(), 5u);
}

TEST(ExperimentTest, RepeatedRunsAreDeterministic) {
  // The repeated runs fan out over the shared thread pool; the pre-split
  // RNG streams and in-order aggregation must make the statistics
  // bit-identical between invocations. Cross-pool-size invariance is
  // exercised by CI re-running the suite at PRISTE_THREADS=1 and =4 (the
  // shared pool is sized once per process, so one test can only see one
  // size) and by common.thread_pool's explicit-pool bit-equality test.
  ExperimentScale scale;
  scale.grid_width = 4;
  scale.grid_height = 4;
  scale.horizon = 5;
  scale.runs = 4;
  const SyntheticWorkload workload(scale, 1.0);
  const auto ev = event::PresenceEvent::Make(workload.grid.num_cells(), 1, 4, 2, 3);
  core::PristeOptions options = DefaultBenchOptions(0.8, 0.3);
  options.qp.grid_points = 9;
  options.qp_threshold_seconds = 0.0;  // no wall-clock dependence
  const RepeatedRunStats a = RunRepeatedGeoInd(
      workload.grid, workload.Chain(), {ev}, options, scale, /*seed=*/77);
  const RepeatedRunStats b = RunRepeatedGeoInd(
      workload.grid, workload.Chain(), {ev}, options, scale, /*seed=*/77);
  EXPECT_EQ(a.mean_budget.mean(), b.mean_budget.mean());
  EXPECT_EQ(a.euclid_km.mean(), b.euclid_km.mean());
  EXPECT_EQ(a.conservative_releases.mean(), b.conservative_releases.mean());
  ASSERT_EQ(a.budget_per_timestamp.length(), b.budget_per_timestamp.length());
  for (size_t t = 0; t < a.budget_per_timestamp.length(); ++t) {
    EXPECT_EQ(a.budget_per_timestamp.At(t).mean(),
              b.budget_per_timestamp.At(t).mean())
        << "t=" << t;
  }
}

}  // namespace
}  // namespace priste::eval
