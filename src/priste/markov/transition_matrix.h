#ifndef PRISTE_MARKOV_TRANSITION_MATRIX_H_
#define PRISTE_MARKOV_TRANSITION_MATRIX_H_

#include "priste/common/status.h"
#include "priste/linalg/matrix.h"
#include "priste/linalg/vector.h"

namespace priste::markov {

/// A validated row-stochastic matrix M where M(i,j) = Pr(u_{t+1}=s_j | u_t=s_i)
/// — the paper's temporal-correlation model (first-order time-homogeneous
/// Markov chain; time-varying chains are handled by passing a different
/// TransitionMatrix per timestamp, as noted in Section III footnote 3).
class TransitionMatrix {
 public:
  /// Validates and wraps `m`. Returns InvalidArgument when `m` is not square,
  /// has a negative entry, or a row that does not sum to 1 within `tol`.
  /// Rows are renormalized exactly to sum to 1 after validation so that long
  /// products stay stochastic.
  static StatusOr<TransitionMatrix> Create(linalg::Matrix m, double tol = 1e-6);

  /// The m×m uniform chain (every row 1/m) — the zero-information prior.
  static TransitionMatrix Uniform(size_t num_states);

  /// The identity chain (the user never moves).
  static TransitionMatrix Identity(size_t num_states);

  size_t num_states() const { return matrix_.rows(); }
  const linalg::Matrix& matrix() const { return matrix_; }

  double operator()(size_t from, size_t to) const { return matrix_(from, to); }

  /// Row `from` as a probability vector over destinations.
  linalg::Vector RowDistribution(size_t from) const { return matrix_.Row(from); }

  /// One Markov step: p_{t+1} = p_t · M. `p` must be length m.
  linalg::Vector Propagate(const linalg::Vector& p) const;

  /// k Markov steps.
  linalg::Vector PropagateSteps(const linalg::Vector& p, int steps) const;

  /// Stationary distribution by power iteration from the uniform vector.
  /// Converges for aperiodic irreducible chains; returns the iterate after
  /// `max_iters` regardless (callers needing certainty check the residual via
  /// Propagate).
  linalg::Vector StationaryDistribution(int max_iters = 10000,
                                        double tol = 1e-12) const;

 private:
  explicit TransitionMatrix(linalg::Matrix m) : matrix_(std::move(m)) {}

  linalg::Matrix matrix_;
};

}  // namespace priste::markov

#endif  // PRISTE_MARKOV_TRANSITION_MATRIX_H_
