#include "priste/core/prior.h"

#include "priste/common/check.h"

namespace priste::core {

double EventPrior(const LiftedEventModel& model, const linalg::Vector& pi) {
  return pi.Dot(model.PriorContraction());
}

double EventPriorNegation(const LiftedEventModel& model, const linalg::Vector& pi) {
  return 1.0 - EventPrior(model, pi);
}

linalg::Vector LiftedDistributionAt(const LiftedEventModel& model,
                                    const linalg::Vector& pi, int t) {
  PRISTE_CHECK(t >= 1);
  linalg::Vector state = model.LiftInitial(pi);
  for (int i = 1; i < t; ++i) {
    state = model.StepRow(state, i);
  }
  return state;
}

}  // namespace priste::core
