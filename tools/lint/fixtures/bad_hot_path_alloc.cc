// Seeded-violation fixture for priste_lint --self-test. NOT compiled.
// Expected findings: 3x hot-path-alloc.
#include <cstdlib>
#include <vector>

#define PRISTE_HOT_PATH

PRISTE_HOT_PATH double Accumulate(const std::vector<double>& xs) {
  std::vector<double> copy;
  copy.reserve(xs.size());  // hot-path-alloc #1: container growth
  double sum = 0.0;
  for (double x : xs) {
    copy.push_back(x);  // hot-path-alloc #2: container growth
    sum += x;
  }
  double* scratch =
      static_cast<double*>(malloc(sizeof(double)));  // hot-path-alloc #3
  *scratch = sum;
  sum = *scratch;
  free(scratch);
  return sum;
}

// Identical code OUTSIDE a marked body must NOT fire.
double Cold(const std::vector<double>& xs) {
  std::vector<double> copy;
  copy.reserve(xs.size());
  for (double x : xs) copy.push_back(x);
  return static_cast<double>(copy.size());
}

// A marked declaration with the body elsewhere must NOT fire.
PRISTE_HOT_PATH double DeclaredOnly(const std::vector<double>& xs);
