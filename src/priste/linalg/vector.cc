#include "priste/linalg/vector.h"

#include <algorithm>
#include <cmath>

#include "priste/common/strings.h"
#include "priste/linalg/kernels.h"

namespace priste::linalg {

Vector Vector::Unit(size_t size, size_t index) {
  PRISTE_CHECK(index < size);
  Vector v(size);
  v[index] = 1.0;
  return v;
}

Vector Vector::UniformProbability(size_t size) {
  PRISTE_CHECK(size > 0);
  return Vector(size, 1.0 / static_cast<double>(size));
}

double Vector::Sum() const { return kernels::Sum(data_.data(), data_.size()); }

double Vector::Dot(const Vector& other) const {
  PRISTE_CHECK(size() == other.size());
  return kernels::Dot(data_.data(), other.data_.data(), data_.size());
}

Vector Vector::Hadamard(const Vector& other) const {
  Vector out = *this;
  out.HadamardInPlace(other);
  return out;
}

void Vector::HadamardInPlace(const Vector& other) {
  PRISTE_CHECK(size() == other.size());
  kernels::HadamardInPlace(other.data_.data(), data_.data(), data_.size());
}

Vector Vector::Scaled(double scalar) const {
  Vector out = *this;
  out.ScaleInPlace(scalar);
  return out;
}

void Vector::ScaleInPlace(double scalar) {
  kernels::Scale(data_.data(), scalar, data_.size());
}

Vector Vector::Plus(const Vector& other) const {
  PRISTE_CHECK(size() == other.size());
  Vector out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Vector Vector::Minus(const Vector& other) const {
  PRISTE_CHECK(size() == other.size());
  Vector out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

double Vector::MaxAbs() const {
  double best = 0.0;
  for (double x : data_) best = std::max(best, std::fabs(x));
  return best;
}

double Vector::NormL1() const {
  double total = 0.0;
  for (double x : data_) total += std::fabs(x);
  return total;
}

double Vector::Max() const {
  PRISTE_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

size_t Vector::ArgMax() const {
  PRISTE_CHECK(!data_.empty());
  return static_cast<size_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

double Vector::Min() const {
  PRISTE_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

Vector Vector::Slice(size_t begin, size_t count) const {
  PRISTE_CHECK(begin + count <= data_.size());
  Vector out(count);
  std::copy(data_.begin() + static_cast<ptrdiff_t>(begin),
            data_.begin() + static_cast<ptrdiff_t>(begin + count),
            out.data_.begin());
  return out;
}

Vector Vector::Concat(const Vector& other) const {
  Vector out(size() + other.size());
  std::copy(data_.begin(), data_.end(), out.data_.begin());
  std::copy(other.data_.begin(), other.data_.end(),
            out.data_.begin() + static_cast<ptrdiff_t>(size()));
  return out;
}

double Vector::NormalizeToProbability() {
  const double total = Sum();
  PRISTE_CHECK_MSG(total > 0.0, "cannot normalize a zero vector");
  ScaleInPlace(1.0 / total);
  return total;
}

bool Vector::AllInRange(double lo, double hi, double tol) const {
  for (double x : data_) {
    if (x < lo - tol || x > hi + tol) return false;
  }
  return true;
}

std::string Vector::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(data_.size());
  for (double x : data_) parts.push_back(FormatDouble(x));
  return "[" + StrJoin(parts, ", ") + "]";
}

}  // namespace priste::linalg
