#include "priste/io/trajectory_io.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "priste/common/strings.h"
#include "priste/common/thread_annotations.h"

namespace priste::io {
namespace {

// A non-blank CSV line together with its 1-based physical line number, so
// error messages point at the line the user sees in their editor even when
// the file contains blank lines.
struct CsvLine {
  std::string text;
  size_t number = 0;
};

std::vector<CsvLine> SplitLines(const std::string& text) {
  std::vector<CsvLine> lines;
  std::istringstream stream(text);
  std::string line;
  size_t number = 0;
  while (std::getline(stream, line)) {
    ++number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) lines.push_back(CsvLine{line, number});
  }
  return lines;
}

// Splits on commas, trimming only LEADING and TRAILING whitespace of each
// field — whitespace inside a field is preserved so "1 2" is reported as the
// malformed field it is instead of silently collapsing to "12".
std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = line.find(',', start);
    const size_t end = comma == std::string::npos ? line.size() : comma;
    size_t lo = start, hi = end;
    while (lo < hi && (line[lo] == ' ' || line[lo] == '\t')) ++lo;
    while (hi > lo && (line[hi - 1] == ' ' || line[hi - 1] == '\t')) --hi;
    fields.push_back(line.substr(lo, hi - lo));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return fields;
}

Result<double> ParseDouble(const std::string& field) {
  // The strict common parser: plain finite decimals only. strtod's extras —
  // "inf"/"nan" coordinates, hex-floats like "0x1p3" — are malformed data in
  // a trajectory CSV, not numbers.
  double value = 0.0;
  if (!priste::ParseDouble(field, &value)) {
    return err::InvalidArgument(
        StrFormat("cannot parse number '%s'", field.c_str()));
  }
  return value;
}

// Parses a field that must hold an integer: fractional values are rejected
// instead of silently truncated (t=1.9 used to pass as t=1).
Result<int> ParseInteger(const std::string& field, const char* what) {
  PRISTE_TRY(const double value, ParseDouble(field));
  if (value != std::floor(value)) {
    return err::InvalidArgument(
        StrFormat("%s '%s' is not an integer", what, field.c_str()));
  }
  if (std::fabs(value) > 1e9) {  // guards the int cast below
    return err::InvalidArgument(
        StrFormat("%s '%s' is out of range", what, field.c_str()));
  }
  return static_cast<int>(value);
}

}  // namespace

PRISTE_NO_ABORT
Result<geo::Trajectory> ParseTrajectoryCsv(const std::string& csv,
                                           const geo::Grid& grid) {
  const std::vector<CsvLine> lines = SplitLines(csv);
  if (lines.empty()) return err::InvalidArgument("empty CSV");

  const std::vector<std::string> header = SplitFields(lines[0].text);
  bool discrete;
  if (header.size() == 2 && header[0] == "t" && header[1] == "cell") {
    discrete = true;
  } else if (header.size() == 3 && header[0] == "t" && header[1] == "x_km" &&
             header[2] == "y_km") {
    discrete = false;
  } else {
    return err::InvalidArgument("CSV header must be 't,cell' or 't,x_km,y_km'");
  }

  geo::Trajectory trajectory;
  int expected_t = 1;
  for (size_t i = 1; i < lines.size(); ++i) {
    const size_t lineno = lines[i].number;
    const std::vector<std::string> fields = SplitFields(lines[i].text);
    if (fields.size() != header.size()) {
      return err::InvalidArgument(
          StrFormat("line %zu has %zu fields, expected %zu", lineno,
                    fields.size(), header.size()));
    }
    const Result<int> t_value = ParseInteger(fields[0], "timestamp");
    if (!t_value.ok()) {
      return err::InvalidArgument(StrFormat(
          "line %zu: %s", lineno, t_value.error().message.c_str()));
    }
    if (*t_value != expected_t) {
      return err::InvalidArgument(
          StrFormat("line %zu: timestamp %d out of order (expected %d)", lineno,
                    *t_value, expected_t));
    }
    ++expected_t;

    if (discrete) {
      const Result<int> cell = ParseInteger(fields[1], "cell");
      if (!cell.ok()) {
        return err::InvalidArgument(StrFormat(
            "line %zu: %s", lineno, cell.error().message.c_str()));
      }
      if (!grid.ContainsCell(*cell)) {
        return err::OutOfRange(
            StrFormat("line %zu: cell %d outside the %zu-cell grid", lineno,
                      *cell, grid.num_cells()));
      }
      trajectory.Append(*cell);
    } else {
      const Result<double> x = ParseDouble(fields[1]);
      const Result<double> y = x.ok() ? ParseDouble(fields[2]) : x;
      if (!y.ok()) {
        return err::InvalidArgument(StrFormat(
            "line %zu: %s", lineno, y.error().message.c_str()));
      }
      trajectory.Append(grid.CellContaining(geo::PointKm{*x, *y}));
    }
  }
  if (trajectory.empty()) return err::InvalidArgument("CSV has no data rows");
  return trajectory;
}

std::string TrajectoryToCsv(const geo::Trajectory& trajectory) {
  std::string out = "t,cell\n";
  for (int t = 1; t <= trajectory.length(); ++t) {
    out += StrFormat("%d,%d\n", t, trajectory.At(t));
  }
  return out;
}

std::string RunResultToCsv(const core::RunResult& run) {
  std::string out =
      "t,true_cell,released_cell,released_budget,halvings,conservative\n";
  for (const auto& step : run.steps) {
    out += StrFormat("%d,%d,%d,%.10g,%d,%d\n", step.t, step.true_cell,
                     step.released_cell, step.released_alpha, step.halvings,
                     step.conservative_timeouts);
  }
  return out;
}

PRISTE_NO_ABORT
Result<geo::Trajectory> ReadTrajectoryFile(const std::string& path,
                                           const geo::Grid& grid) {
  PRISTE_TRY(const std::string contents, ReadTextFile(path));
  return ParseTrajectoryCsv(contents, grid);
}

PRISTE_NO_ABORT
Result<void> WriteTextFile(const std::string& path,
                           const std::string& contents) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return err::NotFound(StrFormat("cannot open '%s' for writing: %s",
                                   path.c_str(), std::strerror(errno)));
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  std::fclose(file);
  if (written != contents.size()) {
    return err::Internal(StrFormat("short write to '%s'", path.c_str()));
  }
  return {};
}

PRISTE_NO_ABORT
Result<std::string> ReadTextFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return err::NotFound(
        StrFormat("cannot open '%s': %s", path.c_str(), std::strerror(errno)));
  }
  std::string contents;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, got);
  }
  std::fclose(file);
  return contents;
}

}  // namespace priste::io
