#ifndef PRISTE_EVENT_PATTERN_H_
#define PRISTE_EVENT_PATTERN_H_

#include <memory>
#include <vector>

#include "priste/event/event.h"

namespace priste::event {

/// PATTERN(S, T) (Definition II.3): true when the user's location lies in
/// region s_t at *every* timestamp of the window — Table II's AND-of-ORs, the
/// generalization of a sensitive trajectory.
class PatternEvent : public SpatiotemporalEvent {
 public:
  /// regions[i] applies at timestamp start+i.
  PatternEvent(std::vector<geo::Region> regions, int start);

  /// A pattern over a single fixed region (stay within an area for the
  /// whole window).
  PatternEvent(geo::Region region, int start, int end);

  /// A classic trajectory secret: exact cell per timestamp.
  static std::shared_ptr<const PatternEvent> FromTrajectory(
      size_t num_states, const std::vector<int>& cells, int start);

  Kind kind() const override { return Kind::kPattern; }
  bool Holds(const geo::Trajectory& trajectory) const override;
  BoolExpr::Ptr ToBooleanExpr() const override;
  std::string ToString() const override;
};

}  // namespace priste::event

#endif  // PRISTE_EVENT_PATTERN_H_
