#include "priste/lppm/planar_laplace.h"

#include <cmath>
#include <numbers>

#include "priste/common/check.h"
#include "priste/common/strings.h"

namespace priste::lppm {
namespace {

hmm::EmissionMatrix BuildEmission(const geo::Grid& grid, double alpha) {
  const size_t m = grid.num_cells();
  linalg::Matrix e(m, m);
  if (alpha <= 0.0) {
    return hmm::EmissionMatrix::Uniform(m, m);
  }
  for (size_t i = 0; i < m; ++i) {
    double sum = 0.0;
    for (size_t o = 0; o < m; ++o) {
      const double d = grid.CellDistanceKm(static_cast<int>(i), static_cast<int>(o));
      const double w = std::exp(-alpha * d);
      e(i, o) = w;
      sum += w;
    }
    for (size_t o = 0; o < m; ++o) e(i, o) /= sum;
  }
  auto result = hmm::EmissionMatrix::Create(std::move(e));
  PRISTE_CHECK_MSG(result.ok(), "planar Laplace emission invalid");
  return std::move(result).value();
}

}  // namespace

PlanarLaplaceMechanism::PlanarLaplaceMechanism(const geo::Grid& grid, double alpha)
    : grid_(grid), alpha_(alpha), emission_(BuildEmission(grid, alpha)) {
  PRISTE_CHECK(alpha >= 0.0);
}

std::string PlanarLaplaceMechanism::name() const {
  return StrFormat("%s-PLM", FormatDouble(alpha_).c_str());
}

int PlanarLaplaceMechanism::SampleContinuous(int true_cell, Rng& rng) const {
  PRISTE_CHECK(grid_.ContainsCell(true_cell));
  if (alpha_ <= 0.0) {
    return static_cast<int>(rng.NextBelow(grid_.num_cells()));
  }
  const geo::PointKm center = grid_.CenterOf(true_cell);
  const double theta = rng.Uniform(0.0, 2.0 * std::numbers::pi);
  // Radial density of the planar Laplace is r·α²·e^{−αr} ⇒ Gamma(2, 1/α).
  const double r = (rng.NextExponential(1.0) + rng.NextExponential(1.0)) / alpha_;
  const geo::PointKm sample{center.x + r * std::cos(theta),
                            center.y + r * std::sin(theta)};
  return grid_.CellContaining(sample);
}

}  // namespace priste::lppm
