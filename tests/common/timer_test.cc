#include "priste/common/timer.h"

#include <gtest/gtest.h>

namespace priste {
namespace {

TEST(TimerTest, ElapsedIsNonNegativeAndIncreasing) {
  Timer timer;
  const double a = timer.ElapsedSeconds();
  const double b = timer.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  const Deadline d = Deadline::Infinite();
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, PastDeadlineExpires) {
  const Deadline d = Deadline::After(-1.0);
  EXPECT_FALSE(d.is_infinite());
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, FutureDeadlineNotYetExpired) {
  const Deadline d = Deadline::After(30.0);
  EXPECT_FALSE(d.Expired());
}

}  // namespace
}  // namespace priste
