// Figure 10: PriSTE with δ-location set privacy (Algorithm 3),
// PRESENCE(S={1:10}, T={4:8}) on synthetic data, horizon T=20 (paper).
//   (a) 0.2-PLM (δ = 0.2) for ε ∈ {0.1, 0.5, 1};
//   (b) α-PLM (δ = 0.2) with α ∈ {0.1, 0.5, 1} for ε = 0.5.
// Expected shape (paper): compared to Fig. 7 the same nominal PLM budget
// must be reduced further — the restricted output domain leaks more, so the
// calibration is stricter.
#include "bench_common.h"

int main() {
  using namespace priste;
  eval::ExperimentScale scale = bench::Banner(
      "Fig. 10", "PRESENCE(S={1:10}, T={4:8}) with delta-location-set, delta=0.2");
  // The paper uses T = 20 for this figure.
  scale.horizon = scale.MapTimestamp(20);
  const eval::SyntheticWorkload workload(scale, /*sigma=*/10.0);
  const auto ev = bench::ScaledPresence(scale, workload.grid.num_cells(), 10, 4, 8);
  std::printf("event: %s, horizon T=%d\n", ev->ToString().c_str(), scale.horizon);
  const double delta = 0.2;

  {
    std::vector<std::string> labels;
    std::vector<eval::RepeatedRunStats> stats;
    for (const double eps : {0.1, 0.5, 1.0}) {
      labels.push_back(StrFormat("eps=%.1f", eps));
      stats.push_back(eval::RunRepeatedDeltaLoc(
          workload.grid, workload.Chain(), {ev}, delta,
          eval::DefaultBenchOptions(eps, 0.2), scale, /*seed=*/1001));
    }
    bench::PrintBudgetSeries("(a) 0.2-PLM with delta-loc-set: budget per timestamp",
                             labels, stats);
    bench::PrintRunSummary("(a) run summary", labels, stats);
  }
  {
    std::vector<std::string> labels;
    std::vector<eval::RepeatedRunStats> stats;
    for (const double alpha : {0.1, 0.5, 1.0}) {
      labels.push_back(StrFormat("%.1f-PLM", alpha));
      stats.push_back(eval::RunRepeatedDeltaLoc(
          workload.grid, workload.Chain(), {ev}, delta,
          eval::DefaultBenchOptions(0.5, alpha), scale, /*seed=*/1002));
    }
    bench::PrintBudgetSeries("(b) eps=0.5: budget per timestamp", labels, stats);
    bench::PrintRunSummary("(b) run summary", labels, stats);
  }
  return 0;
}
