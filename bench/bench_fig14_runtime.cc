// Figure 14: runtime of computing a PATTERN event's prior + joint
// probabilities — the exponential Appendix-B baseline vs the linear
// two-possible-world method.
//   left panel : event width 5, event length 5..15;
//   right panel: event length 5, event width 5..15.
// Expected shape (paper): the baseline grows exponentially (in both length
// and width) while PriSTE stays linear in length / polynomial in width.
// Baseline sizes beyond the path cap are SKIPPED and reported as such —
// never silently truncated.
#include <cmath>

#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "priste/common/timer.h"
#include "priste/core/joint.h"
#include "priste/core/naive_baseline.h"
#include "priste/core/prior.h"
#include "priste/core/two_world.h"
#include "priste/event/pattern.h"

namespace {

using namespace priste;

constexpr double kBaselinePathCap = 2e7;

// Random PATTERN of `length` window steps, each a random region of `width`
// cells, starting at timestamp 2.
event::EventPtr RandomPattern(size_t m, int length, int width, Rng& rng) {
  std::vector<geo::Region> regions;
  for (int i = 0; i < length; ++i) {
    geo::Region region(m);
    while (region.Count() < static_cast<size_t>(width)) {
      region.Add(static_cast<int>(rng.NextBelow(m)));
    }
    regions.push_back(region);
  }
  return std::make_shared<event::PatternEvent>(regions, /*start=*/2);
}

struct Timing {
  double priste_s = 0.0;
  double baseline_s = -1.0;  // <0: skipped (over cap)
};

Timing MeasureOne(const eval::SyntheticWorkload& workload, int length, int width,
                  Rng& rng) {
  const size_t m = workload.grid.num_cells();
  const auto ev = RandomPattern(m, length, width, rng);
  const auto* pattern = static_cast<const event::PatternEvent*>(ev.get());
  const linalg::Vector pi = linalg::Vector::UniformProbability(m);
  const markov::MarkovChain chain(workload.model.transition(), pi);

  std::vector<linalg::Vector> emissions;
  for (int t = 0; t < ev->end(); ++t) {
    linalg::Vector e(m);
    for (size_t i = 0; i < m; ++i) e[i] = 0.1 + 0.9 * rng.NextDouble();
    emissions.push_back(e);
  }

  Timing timing;
  {
    Timer timer;
    const core::TwoWorldModel model(workload.model.transition(), ev);
    double sink = core::EventPrior(model, pi);
    core::JointCalculator calc(&model, pi);
    for (const auto& e : emissions) calc.Push(e);
    sink += calc.JointEvent();
    benchmark::DoNotOptimize(sink);
    timing.priste_s = timer.ElapsedSeconds();
  }
  if (core::NaivePatternPathCount(*pattern) <= kBaselinePathCap) {
    std::vector<linalg::Vector> window_emissions(
        emissions.begin() + (ev->start() - 1), emissions.end());
    Timer timer;
    double sink = core::NaivePatternPrior(chain, *pattern);
    sink += core::NaivePatternJoint(chain.transition(),
                                    chain.MarginalAt(ev->start() - 1),
                                    /*step_before=*/true, *pattern,
                                    window_emissions);
    benchmark::DoNotOptimize(sink);
    timing.baseline_s = timer.ElapsedSeconds();
  }
  return timing;
}

void RunPanel(const char* title, const eval::SyntheticWorkload& workload,
              const std::vector<std::pair<int, int>>& cases, int repeats) {
  std::printf("\n%s\n", title);
  eval::TablePrinter table({"length", "width", "paths", "PriSTE (s)",
                            "baseline (s)", "speedup"});
  Rng rng(1401);
  for (const auto& [length, width] : cases) {
    double priste_total = 0.0, baseline_total = 0.0;
    bool baseline_ran = true;
    for (int r = 0; r < repeats; ++r) {
      const Timing t = MeasureOne(workload, length, width, rng);
      priste_total += t.priste_s;
      if (t.baseline_s < 0.0) {
        baseline_ran = false;
      } else {
        baseline_total += t.baseline_s;
      }
    }
    const double paths = std::pow(static_cast<double>(width), length);
    table.AddRow(
        {StrFormat("%d", length), StrFormat("%d", width), StrFormat("%.2e", paths),
         StrFormat("%.5f", priste_total / repeats),
         baseline_ran ? StrFormat("%.5f", baseline_total / repeats)
                      : std::string("skipped (> path cap)"),
         baseline_ran
             ? StrFormat("%.1fx", (baseline_total / repeats) /
                                      std::max(priste_total / repeats, 1e-9))
             : std::string("-")});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  using namespace priste;
  const auto scale = bench::Banner(
      "Fig. 14", "runtime: exponential baseline vs linear two-world method");
  const eval::SyntheticWorkload workload(scale, /*sigma=*/1.0);
  const int repeats = scale.full ? 5 : 2;
  std::printf("baseline path cap: %.0e paths (larger cases reported as skipped)\n",
              kBaselinePathCap);

  std::vector<std::pair<int, int>> by_length;
  for (int length = 5; length <= 15; length += 2) by_length.push_back({length, 5});
  RunPanel("(left) event width = 5, varying length", workload, by_length, repeats);

  std::vector<std::pair<int, int>> by_width;
  for (int width = 5; width <= 15; width += 2) by_width.push_back({5, width});
  RunPanel("(right) event length = 5, varying width", workload, by_width, repeats);
  return 0;
}
