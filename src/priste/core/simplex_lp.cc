#include "priste/core/simplex_lp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "priste/common/check.h"

namespace priste::core {
namespace {

constexpr double kTol = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

// Solves the k×k system B y = rhs by Gaussian elimination with partial
// pivoting. Returns false when B is (numerically) singular. The k ∈ {1, 2}
// systems the QP slice LPs generate every simplex iteration take the closed
// forms below — the same pivot choices and tolerances as the general
// elimination, without its loop overhead.
bool SolveSquare(linalg::Matrix b, linalg::Vector rhs, linalg::Vector* out) {
  const size_t k = b.rows();
  PRISTE_CHECK(b.cols() == k && rhs.size() == k);
  if (k == 1) {
    if (std::fabs(b(0, 0)) < 1e-12) return false;
    *out = linalg::Vector{rhs[0] / b(0, 0)};
    return true;
  }
  if (k == 2) {
    const size_t p = std::fabs(b(1, 0)) > std::fabs(b(0, 0)) ? 1 : 0;
    const size_t q = 1 - p;
    if (std::fabs(b(p, 0)) < 1e-12) return false;
    const double f = b(q, 0) / b(p, 0);
    const double denom = b(q, 1) - f * b(p, 1);
    if (std::fabs(denom) < 1e-12) return false;
    const double y1 = (rhs[q] - f * rhs[p]) / denom;
    const double y0 = (rhs[p] - b(p, 1) * y1) / b(p, 0);
    *out = linalg::Vector{y0, y1};
    return true;
  }
  for (size_t col = 0; col < k; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < k; ++r) {
      if (std::fabs(b(r, col)) > std::fabs(b(pivot, col))) pivot = r;
    }
    if (std::fabs(b(pivot, col)) < 1e-12) return false;
    if (pivot != col) {
      for (size_t c = 0; c < k; ++c) std::swap(b(pivot, c), b(col, c));
      std::swap(rhs[pivot], rhs[col]);
    }
    for (size_t r = col + 1; r < k; ++r) {
      const double f = b(r, col) / b(col, col);
      if (f == 0.0) continue;
      for (size_t c = col; c < k; ++c) b(r, c) -= f * b(col, c);
      rhs[r] -= f * rhs[col];
    }
  }
  linalg::Vector y(k);
  for (size_t row = k; row-- > 0;) {
    double acc = rhs[row];
    for (size_t c = row + 1; c < k; ++c) acc -= b(row, c) * y[c];
    y[row] = acc / b(row, row);
  }
  *out = y;
  return true;
}

// Internal simplex state over the extended problem (originals + artificials).
class BoundedSimplex {
 public:
  BoundedSimplex(const LpProblem& problem)
      : k_(problem.a.rows()), n_(problem.a.cols()) {
    PRISTE_CHECK(problem.b.size() == k_);
    PRISTE_CHECK(problem.c.size() == n_);
    PRISTE_CHECK(problem.upper.size() == n_);
    total_ = n_ + k_;

    a_ = linalg::Matrix(k_, total_);
    a_.SetBlock(0, 0, problem.a);
    b_ = problem.b;
    upper_.assign(total_, 0.0);
    for (size_t j = 0; j < n_; ++j) upper_[j] = problem.upper[j];

    // Artificial columns: ±e_i so the artificial starts at |b_i| >= 0.
    x_.assign(total_, 0.0);
    at_upper_.assign(total_, false);
    basis_.resize(k_);
    for (size_t i = 0; i < k_; ++i) {
      const double sign = b_[i] >= 0.0 ? 1.0 : -1.0;
      a_(i, n_ + i) = sign;
      upper_[n_ + i] = kInf;
      basis_[i] = n_ + i;
      x_[n_ + i] = std::fabs(b_[i]);
    }
  }

  LpSolution Solve(const linalg::Vector& true_objective) {
    // Phase 1: maximize −Σ artificials.
    std::vector<double> phase1(total_, 0.0);
    for (size_t i = 0; i < k_; ++i) phase1[n_ + i] = -1.0;
    LpSolution::Outcome outcome = RunSimplex(phase1);
    if (outcome == LpSolution::Outcome::kIterationLimit) {
      return Finish(outcome, true_objective);
    }
    double artificial_mass = 0.0;
    for (size_t i = 0; i < k_; ++i) artificial_mass += x_[n_ + i];
    if (artificial_mass > 1e-7) {
      return Finish(LpSolution::Outcome::kInfeasible, true_objective);
    }
    // Phase 2: clamp artificials to 0 and optimize the real objective.
    for (size_t i = 0; i < k_; ++i) upper_[n_ + i] = 0.0;
    std::vector<double> phase2(total_, 0.0);
    for (size_t j = 0; j < n_; ++j) phase2[j] = true_objective[j];
    outcome = RunSimplex(phase2);
    if (outcome == LpSolution::Outcome::kIterationLimit) {
      // The incumbent is feasible; report it with the honest outcome flag.
      return Finish(outcome, true_objective);
    }
    return Finish(outcome, true_objective);
  }

 private:
  LpSolution Finish(LpSolution::Outcome outcome, const linalg::Vector& c) {
    LpSolution out;
    out.outcome = outcome;
    out.x = linalg::Vector(n_);
    for (size_t j = 0; j < n_; ++j) out.x[j] = x_[j];
    out.objective = 0.0;
    for (size_t j = 0; j < n_; ++j) out.objective += c[j] * x_[j];
    return out;
  }

  bool IsBasic(size_t j) const {
    for (size_t i = 0; i < k_; ++i) {
      if (basis_[i] == j) return true;
    }
    return false;
  }

  // Recomputes basic values from the nonbasic assignment (keeps the iterate
  // exactly consistent with A x = b up to the linear solve).
  bool RefreshBasicValues() {
    linalg::Vector rhs = b_;
    for (size_t j = 0; j < total_; ++j) {
      if (IsBasic(j) || x_[j] == 0.0) continue;
      for (size_t i = 0; i < k_; ++i) rhs[i] -= a_(i, j) * x_[j];
    }
    linalg::Matrix basis_matrix(k_, k_);
    for (size_t i = 0; i < k_; ++i) {
      for (size_t r = 0; r < k_; ++r) basis_matrix(r, i) = a_(r, basis_[i]);
    }
    linalg::Vector xb;
    if (!SolveSquare(basis_matrix, rhs, &xb)) return false;
    for (size_t i = 0; i < k_; ++i) x_[basis_[i]] = xb[i];
    return true;
  }

  LpSolution::Outcome RunSimplex(const std::vector<double>& c) {
    const size_t max_iters = 50 * (total_ + k_) + 200;
    for (size_t iter = 0; iter < max_iters; ++iter) {
      const bool bland = iter > 20 * (total_ + k_);
      if (!RefreshBasicValues()) return LpSolution::Outcome::kIterationLimit;

      // Dual vector y: Bᵀ y = c_B.
      linalg::Matrix bt(k_, k_);
      linalg::Vector cb(k_);
      for (size_t i = 0; i < k_; ++i) {
        cb[i] = c[basis_[i]];
        for (size_t r = 0; r < k_; ++r) bt(i, r) = a_(r, basis_[i]);
      }
      linalg::Vector y;
      if (!SolveSquare(bt, cb, &y)) return LpSolution::Outcome::kIterationLimit;

      // Pricing.
      size_t entering = total_;
      double best_score = kTol;
      double entering_dir = 0.0;  // +1 from lower, −1 from upper
      for (size_t j = 0; j < total_; ++j) {
        if (IsBasic(j)) continue;
        if (upper_[j] == 0.0) continue;  // fixed variable
        double dj = c[j];
        for (size_t i = 0; i < k_; ++i) dj -= y[i] * a_(i, j);
        const bool from_lower = !at_upper_[j];
        const double score = from_lower ? dj : -dj;
        if (score > kTol) {
          if (bland) {
            entering = j;
            entering_dir = from_lower ? 1.0 : -1.0;
            break;
          }
          if (score > best_score) {
            best_score = score;
            entering = j;
            entering_dir = from_lower ? 1.0 : -1.0;
          }
        }
      }
      if (entering == total_) return LpSolution::Outcome::kOptimal;

      // Direction through the basis: B w = A_entering.
      linalg::Matrix basis_matrix(k_, k_);
      linalg::Vector ae(k_);
      for (size_t i = 0; i < k_; ++i) {
        ae[i] = a_(i, entering);
        for (size_t r = 0; r < k_; ++r) basis_matrix(r, i) = a_(r, basis_[i]);
      }
      linalg::Vector w;
      if (!SolveSquare(basis_matrix, ae, &w)) {
        return LpSolution::Outcome::kIterationLimit;
      }

      // Ratio test. The entering variable moves by θ in direction
      // entering_dir; basic i changes by −entering_dir·θ·w_i.
      double theta = upper_[entering] == kInf ? kInf : upper_[entering];
      size_t leaving = k_;          // k_ = bound flip
      bool leaving_to_upper = false;
      for (size_t i = 0; i < k_; ++i) {
        const double rate = -entering_dir * w[i];
        const size_t bj = basis_[i];
        if (rate < -kTol) {  // basic decreases toward 0
          const double limit = x_[bj] / (-rate);
          if (limit < theta - kTol) {
            theta = limit;
            leaving = i;
            leaving_to_upper = false;
          }
        } else if (rate > kTol && upper_[bj] < kInf) {  // increases toward u
          const double limit = (upper_[bj] - x_[bj]) / rate;
          if (limit < theta - kTol) {
            theta = limit;
            leaving = i;
            leaving_to_upper = true;
          }
        }
      }
      if (theta == kInf) return LpSolution::Outcome::kUnbounded;
      theta = std::max(theta, 0.0);

      // Apply the step.
      x_[entering] += entering_dir * theta;
      for (size_t i = 0; i < k_; ++i) {
        x_[basis_[i]] -= entering_dir * theta * w[i];
      }
      if (leaving == k_) {
        // Bound flip: entering switches bounds, basis unchanged.
        at_upper_[entering] = !at_upper_[entering];
        if (at_upper_[entering] && upper_[entering] < kInf) {
          x_[entering] = upper_[entering];
        } else if (!at_upper_[entering]) {
          x_[entering] = 0.0;
        }
      } else {
        const size_t out_var = basis_[leaving];
        at_upper_[out_var] = leaving_to_upper;
        x_[out_var] = leaving_to_upper ? upper_[out_var] : 0.0;
        basis_[leaving] = entering;
        at_upper_[entering] = false;
      }
    }
    return LpSolution::Outcome::kIterationLimit;
  }

  size_t k_;
  size_t n_;
  size_t total_;
  linalg::Matrix a_;
  linalg::Vector b_;
  std::vector<double> upper_;
  std::vector<double> x_;
  std::vector<bool> at_upper_;
  std::vector<size_t> basis_;
};

}  // namespace

LpSolution SolveBoundedLp(const LpProblem& problem) {
  BoundedSimplex simplex(problem);
  return simplex.Solve(problem.c);
}

}  // namespace priste::core
