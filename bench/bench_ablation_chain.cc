// Ablation (DESIGN.md §4): evaluation order for the Lemma III.2 chain.
// The library computes b = (prefix of diag/transition factors) · seed as a
// right-to-left MATRIX-VECTOR chain, O(t·m²). The literal Algorithm-2
// reading maintains the prefix MATRIX A (one matrix-matrix product per
// step, O(m³) each). This bench measures both on the same inputs.
#include <benchmark/benchmark.h>

#include "bench_common.h"

#include "priste/common/timer.h"
#include "priste/core/quantifier.h"
#include "priste/core/two_world.h"
#include "priste/linalg/ops.h"
#include "priste/lppm/planar_laplace.h"

int main() {
  using namespace priste;
  const auto scale = bench::Banner(
      "Ablation: chain order", "vector chain vs matrix accumulation");
  // A modest grid keeps the O(m³) variant tractable.
  const int side = scale.full ? 14 : 10;
  const geo::Grid grid(side, side, 1.0);
  const geo::GaussianGridModel mobility(grid, 1.0);
  const size_t m = grid.num_cells();
  const auto ev = event::PresenceEvent::Make(m, 1, 8, 3, 5);
  const core::TwoWorldModel model(mobility.transition(), ev);
  const core::PrivacyQuantifier quantifier(&model);

  const lppm::PlanarLaplaceMechanism plm(grid, 0.5);
  Rng rng(1801);
  const markov::MarkovChain chain = mobility.ChainUniformStart();
  const int T = 12;
  const geo::Trajectory truth(chain.Sample(T, rng));
  std::vector<linalg::Vector> history;
  for (int t = 1; t <= T; ++t) {
    history.push_back(
        plm.emission().EmissionColumn(plm.Perturb(truth.At(t), rng)));
  }

  // Vector chain: ComputeVectors at every prefix (the library path).
  double vector_seconds = 0.0;
  {
    Timer timer;
    for (int t = 1; t <= T; ++t) {
      const auto v = quantifier.ComputeVectors(
          std::vector<linalg::Vector>(history.begin(), history.begin() + t));
      benchmark::DoNotOptimize(v.b_bar.Sum());
    }
    vector_seconds = timer.ElapsedSeconds();
  }

  // Matrix accumulation: A ← A · M_{t−1} · p̃ᴰ in the lifted 2m space.
  double matrix_seconds = 0.0;
  {
    Timer timer;
    linalg::Matrix a = linalg::Matrix::Identity(2 * m);
    for (int t = 1; t <= T; ++t) {
      if (t > 1) a = linalg::MatMul(a, model.TransitionAt(t - 1)->ToDense());
      // Right-scale by the duplicated emission diagonal.
      const linalg::Vector dup = history[static_cast<size_t>(t - 1)].Concat(
          history[static_cast<size_t>(t - 1)]);
      a = linalg::ScaleColumns(a, dup);
      // b via the maintained prefix matrix.
      const linalg::Vector seed =
          t <= model.event_end()
              ? model.SuffixTrue(t)
              : linalg::Vector::Zeros(m).Concat(linalg::Vector::Ones(m));
      benchmark::DoNotOptimize(linalg::MatVec(a, seed).Sum());
    }
    matrix_seconds = timer.ElapsedSeconds();
  }

  eval::TablePrinter table({"variant", "total (s)", "per timestamp (ms)"});
  table.AddRow({"vector chain O(t·m²)", StrFormat("%.4f", vector_seconds),
                StrFormat("%.2f", vector_seconds * 1000.0 / T)});
  table.AddRow({"matrix accumulation O(m³)", StrFormat("%.4f", matrix_seconds),
                StrFormat("%.2f", matrix_seconds * 1000.0 / T)});
  table.Print(std::cout);
  std::printf("\nspeedup: %.1fx (m = %zu, T = %d)\n",
              matrix_seconds / std::max(vector_seconds, 1e-12), m, T);
  return 0;
}
