#include "priste/core/joint.h"

#include "priste/core/two_world.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "priste/core/prior.h"
#include "priste/event/enumeration.h"
#include "priste/event/pattern.h"
#include "priste/event/presence.h"
#include "priste/markov/markov_chain.h"
#include "testing/test_util.h"

namespace priste::core {
namespace {

using event::PatternEvent;
using event::PresenceEvent;

struct JointCase {
  int seed;
  bool presence;
  int start;
  int window;
  int horizon;  // T >= window end, to exercise both lemma regimes
};

class JointEnumerationTest : public ::testing::TestWithParam<JointCase> {};

// The streaming JointCalculator must match brute-force enumeration of
// Pr(EVENT, o_1..o_t) at *every* prefix length t — covering Lemma III.2
// (t <= end) and Lemma III.3 (t > end).
TEST_P(JointEnumerationTest, MatchesEnumerationAtEveryPrefix) {
  const JointCase& c = GetParam();
  Rng rng(7000 + c.seed);
  const size_t m = 3;
  const auto chain = testing::RandomTransition(m, rng);
  const linalg::Vector pi = testing::RandomProbability(m, rng);
  std::vector<geo::Region> regions;
  for (int i = 0; i < c.window; ++i) regions.push_back(testing::RandomRegion(m, rng));

  event::EventPtr ev;
  if (c.presence) {
    ev = std::make_shared<PresenceEvent>(regions, c.start);
  } else {
    ev = std::make_shared<PatternEvent>(regions, c.start);
  }
  ASSERT_LE(ev->end(), c.horizon);
  const TwoWorldModel model(chain, ev);
  const markov::MarkovChain mc(chain, pi);
  const auto expr = ev->ToBooleanExpr();
  const auto not_expr = event::BoolExpr::Not(expr);

  JointCalculator calc(&model, pi);
  std::vector<linalg::Vector> emissions;
  for (int t = 1; t <= c.horizon; ++t) {
    emissions.push_back(testing::RandomEmissionColumn(m, rng));
    calc.Push(emissions.back());
    ASSERT_EQ(calc.current_time(), t);

    // Enumeration needs the horizon to cover the event window even for
    // short prefixes; pad the emission list with all-ones columns (no
    // observation) up to end.
    std::vector<linalg::Vector> padded = emissions;
    while (static_cast<int>(padded.size()) < ev->end()) {
      padded.push_back(linalg::Vector::Ones(m));
    }
    const double oracle_event = event::EnumerateJoint(mc, *expr, padded);
    const double oracle_not = event::EnumerateJoint(mc, *not_expr, padded);

    EXPECT_NEAR(calc.JointEvent(), oracle_event, 1e-12)
        << "t=" << t << " " << (c.presence ? "PRESENCE" : "PATTERN");
    EXPECT_NEAR(calc.JointNotEvent(), oracle_not, 1e-12) << "t=" << t;
    EXPECT_NEAR(calc.Marginal(), oracle_event + oracle_not, 1e-12) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, JointEnumerationTest,
    ::testing::Values(JointCase{0, true, 2, 2, 5}, JointCase{1, true, 1, 2, 4},
                      JointCase{2, true, 3, 1, 5}, JointCase{3, true, 2, 3, 6},
                      JointCase{4, false, 2, 2, 5}, JointCase{5, false, 1, 2, 4},
                      JointCase{6, false, 3, 1, 5}, JointCase{7, false, 2, 3, 6},
                      JointCase{8, true, 1, 1, 3}, JointCase{9, false, 1, 1, 3}));

TEST(JointCalculatorTest, MarginalMatchesForwardFilter) {
  // Marginal() must equal the standard HMM likelihood regardless of the
  // event encoded in the lifted chain.
  Rng rng(31);
  const size_t m = 4;
  const auto chain = testing::RandomTransition(m, rng);
  const linalg::Vector pi = testing::RandomProbability(m, rng);
  const auto ev = std::make_shared<PresenceEvent>(testing::RandomRegion(m, rng), 2, 3);
  const TwoWorldModel model(chain, ev);
  const markov::MarkovChain mc(chain, pi);

  JointCalculator calc(&model, pi);
  // Plain forward filter in the base chain.
  linalg::Vector alpha;
  for (int t = 1; t <= 6; ++t) {
    const linalg::Vector e = testing::RandomEmissionColumn(m, rng);
    calc.Push(e);
    if (t == 1) {
      alpha = pi.Hadamard(e);
    } else {
      alpha = chain.Propagate(alpha);
      alpha.HadamardInPlace(e);
    }
    EXPECT_NEAR(calc.Marginal(), alpha.Sum(), 1e-13) << "t=" << t;
  }
}

TEST(JointCalculatorTest, PosteriorConvergesWithPinnedObservations) {
  // Identity-like emissions that pin the user inside the region at the event
  // window should drive the posterior of PRESENCE to ~1.
  Rng rng(33);
  const size_t m = 3;
  const auto chain = testing::RandomTransition(m, rng);
  const linalg::Vector pi = testing::RandomProbability(m, rng);
  const auto ev = std::make_shared<PresenceEvent>(geo::Region(3, {0}), 2, 3);
  const TwoWorldModel model(chain, ev);

  JointCalculator calc(&model, pi);
  // Near-identity emission pinning state 0.
  linalg::Vector pin0(m, 1e-9);
  pin0[0] = 1.0;
  linalg::Vector anything = linalg::Vector::Ones(m);
  calc.Push(anything);
  calc.Push(pin0);  // at t=2 the user is (almost surely) at s1 — in region
  EXPECT_GT(calc.PosteriorEvent(), 0.999);
}

TEST(JointCalculatorTest, LikelihoodRatioIsPositiveAndFinite) {
  Rng rng(35);
  const size_t m = 3;
  const auto chain = testing::RandomTransition(m, rng);
  const linalg::Vector pi = testing::RandomProbability(m, rng);
  const auto ev = std::make_shared<PresenceEvent>(testing::RandomRegion(m, rng), 2, 3);
  const TwoWorldModel model(chain, ev);
  JointCalculator calc(&model, pi);
  for (int t = 1; t <= 5; ++t) {
    calc.Push(testing::RandomEmissionColumn(m, rng));
    const double ratio = calc.LikelihoodRatio();
    EXPECT_GT(ratio, 0.0);
    EXPECT_TRUE(std::isfinite(ratio));
  }
}

TEST(JointCalculatorTest, UniformEmissionsKeepRatioAtOne) {
  // With uninformative observations the likelihood ratio stays exactly 1.
  Rng rng(37);
  const size_t m = 3;
  const auto chain = testing::RandomTransition(m, rng);
  const linalg::Vector pi = testing::RandomProbability(m, rng);
  const auto ev = std::make_shared<PresenceEvent>(testing::RandomRegion(m, rng), 2, 4);
  const TwoWorldModel model(chain, ev);
  JointCalculator calc(&model, pi);
  const linalg::Vector uniform(m, 1.0 / static_cast<double>(m));
  for (int t = 1; t <= 6; ++t) {
    calc.Push(uniform);
    EXPECT_NEAR(calc.LikelihoodRatio(), 1.0, 1e-9) << "t=" << t;
  }
}

}  // namespace
}  // namespace priste::core
