#include "priste/core/event_model.h"

#include <algorithm>
#include <vector>

#include "priste/common/check.h"
#include "priste/linalg/kernels.h"

namespace priste::core {

void LiftedEventModel::StepRowInto(const linalg::Vector& v, int t,
                                   linalg::Vector& out) const {
  out = StepRow(v, t);
}

void LiftedEventModel::StepColumnInto(const linalg::Vector& v, int t,
                                      linalg::Vector& out) const {
  out = StepColumn(v, t);
}

void LiftedEventModel::ApplyEmissionInPlace(const linalg::Vector& emission,
                                            linalg::Vector& v) const {
  v = ApplyEmission(emission, v);
}

void LiftedEventModel::ApplyEmissionInPlace(const linalg::SparseVector& emission,
                                            linalg::Vector& v) const {
  PRISTE_CHECK(v.size() == lifted_size());
  ApplyEmissionSpanInPlace(emission, v.data());
}

void LiftedEventModel::StepRowSpanInto(const double* v, int t,
                                       double* out) const {
  linalg::Vector vin(std::vector<double>(v, v + lifted_size()));
  linalg::Vector vout(lifted_size());
  StepRowInto(vin, t, vout);
  std::copy(vout.data(), vout.data() + lifted_size(), out);
}

void LiftedEventModel::ApplyEmissionSpanInPlace(const linalg::Vector& emission,
                                                double* v) const {
  const size_t m = num_states();
  PRISTE_CHECK(emission.size() == m);
  PRISTE_CHECK(m > 0 && lifted_size() % m == 0);
  const size_t k = lifted_size() / m;
  for (size_t q = 0; q < k; ++q) {
    linalg::kernels::HadamardInPlace(emission.data(), v + q * m, m);
  }
}

void LiftedEventModel::ApplyEmissionSpanInPlace(
    const linalg::SparseVector& emission, double* v) const {
  const size_t m = num_states();
  PRISTE_CHECK(emission.size() == m);
  PRISTE_CHECK(m > 0 && lifted_size() % m == 0);
  const size_t k = lifted_size() / m;
  for (size_t q = 0; q < k; ++q) {
    emission.HadamardSpanInPlace(v + q * m);
  }
}

void LiftedEventModel::InitializeDerived(linalg::Vector accepting_mask) {
  PRISTE_CHECK(accepting_mask.size() == lifted_size());
  accepting_mask_ = std::move(accepting_mask);

  const int end = event_end();
  PRISTE_CHECK(end >= 1);
  // suffix_[t-1] = M_t · suffix_[t]: each slot doubles as the target buffer,
  // so the whole chain is one allocation per stored vector and no temporaries.
  suffix_.assign(static_cast<size_t>(end), linalg::Vector());
  suffix_[static_cast<size_t>(end - 1)] = accepting_mask_;
  for (int t = end - 1; t >= 1; --t) {
    suffix_[static_cast<size_t>(t - 1)] = linalg::Vector(lifted_size());
    StepColumnInto(suffix_[static_cast<size_t>(t)], t,
                   suffix_[static_cast<size_t>(t - 1)]);
  }
  a_bar_ = ContractColumn(suffix_[0]);
}

const linalg::Vector& LiftedEventModel::SuffixTrue(int t) const {
  PRISTE_CHECK(t >= 1 && t <= event_end());
  return suffix_[static_cast<size_t>(t - 1)];
}

}  // namespace priste::core
