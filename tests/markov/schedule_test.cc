#include "priste/markov/schedule.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace priste::markov {
namespace {

TEST(ScheduleTest, HomogeneousAlwaysSameMatrix) {
  Rng rng(3);
  const auto schedule = TransitionSchedule::Homogeneous(testing::RandomTransition(3, rng));
  EXPECT_TRUE(schedule.is_homogeneous());
  EXPECT_EQ(schedule.num_distinct_matrices(), 1u);
  for (int t = 1; t <= 10; ++t) {
    EXPECT_EQ(schedule.IndexAtStep(t), 0);
  }
}

TEST(ScheduleTest, CyclicAlternates) {
  Rng rng(5);
  const auto schedule = TransitionSchedule::Cyclic(
      {testing::RandomTransition(3, rng), testing::RandomTransition(3, rng)});
  ASSERT_TRUE(schedule.ok());
  EXPECT_FALSE(schedule->is_homogeneous());
  EXPECT_EQ(schedule->IndexAtStep(1), 0);
  EXPECT_EQ(schedule->IndexAtStep(2), 1);
  EXPECT_EQ(schedule->IndexAtStep(3), 0);
  EXPECT_EQ(schedule->IndexAtStep(4), 1);
}

TEST(ScheduleTest, PerStepRepeatsLast) {
  Rng rng(7);
  const auto schedule = TransitionSchedule::PerStep(
      {testing::RandomTransition(3, rng), testing::RandomTransition(3, rng),
       testing::RandomTransition(3, rng)});
  ASSERT_TRUE(schedule.ok());
  EXPECT_EQ(schedule->IndexAtStep(1), 0);
  EXPECT_EQ(schedule->IndexAtStep(3), 2);
  EXPECT_EQ(schedule->IndexAtStep(4), 2);
  EXPECT_EQ(schedule->IndexAtStep(100), 2);
}

TEST(ScheduleTest, RejectsBadInputs) {
  Rng rng(9);
  EXPECT_FALSE(TransitionSchedule::Cyclic({}).ok());
  EXPECT_FALSE(TransitionSchedule::PerStep({}).ok());
  EXPECT_FALSE(TransitionSchedule::Cyclic({testing::RandomTransition(3, rng),
                                           testing::RandomTransition(4, rng)})
                   .ok());
}

TEST(ScheduleTest, MarginalMatchesManualPropagation) {
  Rng rng(11);
  const auto a = testing::RandomTransition(3, rng);
  const auto b = testing::RandomTransition(3, rng);
  const auto schedule = TransitionSchedule::Cyclic({a, b});
  ASSERT_TRUE(schedule.ok());
  const linalg::Vector pi = testing::RandomProbability(3, rng);
  // t = 3 applies a then b.
  const linalg::Vector expected = b.Propagate(a.Propagate(pi));
  EXPECT_LT(schedule->MarginalAt(pi, 3).Minus(expected).MaxAbs(), 1e-14);
  EXPECT_LT(schedule->MarginalAt(pi, 1).Minus(pi).MaxAbs(), 1e-15);
}

}  // namespace
}  // namespace priste::markov
