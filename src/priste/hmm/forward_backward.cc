#include "priste/hmm/forward_backward.h"

#include <cmath>

namespace priste::hmm {
namespace {

// Dense/sparse emission columns share every recursion below; the only
// per-type operations are the size probe (both types spell it size()), the
// first-step Hadamard with the initial distribution, and the fused
// transition kernels (overloaded on the column type).
void FirstAlphaInto(const linalg::Vector& initial, const linalg::Vector& e,
                    linalg::Vector& out) {
  for (size_t i = 0; i < out.size(); ++i) out[i] = initial[i] * e[i];
}

void FirstAlphaInto(const linalg::Vector& initial,
                    const linalg::SparseVector& e, linalg::Vector& out) {
  e.HadamardInto(initial, out);
}

template <typename Column>
Status ValidateInputs(const markov::TransitionMatrix& transition,
                      const linalg::Vector& initial,
                      const std::vector<Column>& emissions) {
  const size_t m = transition.num_states();
  if (initial.size() != m) {
    return Status::InvalidArgument("initial distribution size != num_states");
  }
  if (emissions.empty()) {
    return Status::InvalidArgument("need at least one observation");
  }
  for (const auto& e : emissions) {
    if (e.size() != m) {
      return Status::InvalidArgument("emission column size != num_states");
    }
  }
  return Status::Ok();
}

// Scaled forward pass shared by ForwardBackward and ForwardOnly: fills
// `alphas` with α̂_t (each summing to 1) and `scales` with the per-step
// normalizers c_t. Allocation-free per step: every vector is written in
// place via the chain's fused kernels. Fails only on a genuine zero.
template <typename Column>
Status ScaledForward(const markov::TransitionMatrix& transition,
                     const linalg::Vector& initial,
                     const std::vector<Column>& emissions,
                     std::vector<linalg::Vector>& alphas,
                     std::vector<double>& scales) {
  const size_t m = transition.num_states();
  const size_t T = emissions.size();
  alphas.assign(T, linalg::Vector());
  scales.assign(T, 0.0);

  // α_1 = π ∘ p̃_{o_1}; α_t = (α_{t-1} M) ∘ p̃_{o_t}  (Eq. 10), rescaled to
  // a probability vector after every step.
  for (size_t t = 0; t < T; ++t) {
    alphas[t] = linalg::Vector(m);
    if (t == 0) {
      FirstAlphaInto(initial, emissions[0], alphas[0]);
    } else {
      transition.PropagateHadamardInto(alphas[t - 1], emissions[t], alphas[t]);
    }
    const double c = alphas[t].Sum();
    if (c <= 0.0) {
      return Status::FailedPrecondition(
          "observations have zero probability under the model");
    }
    scales[t] = c;
    alphas[t].ScaleInPlace(1.0 / c);
  }
  return Status::Ok();
}

template <typename Column>
StatusOr<ForwardBackwardResult> ForwardBackwardImpl(
    const markov::TransitionMatrix& transition, const linalg::Vector& initial,
    const std::vector<Column>& emissions) {
  PRISTE_RETURN_IF_ERROR(ValidateInputs(transition, initial, emissions));
  const size_t m = transition.num_states();
  const size_t T = emissions.size();

  ForwardBackwardResult out;
  PRISTE_RETURN_IF_ERROR(
      ScaledForward(transition, initial, emissions, out.alphas, out.scales));
  out.log_likelihood = 0.0;
  for (const double c : out.scales) out.log_likelihood += std::log(c);
  out.likelihood = std::exp(out.log_likelihood);

  // β_T = 1; β_t = M (p̃_{o_{t+1}} ∘ β_{t+1})  (Eq. 11), divided by c_{t+1}
  // so that β̂_t pairs with α̂_t: Σ_k α̂_t^k β̂_t^k = 1 exactly.
  out.betas.assign(T, linalg::Vector());
  out.betas[T - 1] = linalg::Vector::Ones(m);
  for (size_t t = T - 1; t-- > 0;) {
    out.betas[t] = linalg::Vector(m);
    transition.BackwardHadamardInto(emissions[t + 1], out.betas[t + 1],
                                    out.betas[t]);
    out.betas[t].ScaleInPlace(1.0 / out.scales[t + 1]);
  }

  // Posterior (Eq. 12): Pr(u_t = s_k | o_1..o_T) ∝ α̂_t^k β̂_t^k — the scale
  // products cancel in the normalization.
  out.posteriors.reserve(T);
  for (size_t t = 0; t < T; ++t) {
    linalg::Vector post = out.alphas[t].Hadamard(out.betas[t]);
    const double norm = post.Sum();
    if (norm <= 0.0) {
      return Status::FailedPrecondition(
          "observations have zero probability under the model");
    }
    post.ScaleInPlace(1.0 / norm);
    out.posteriors.push_back(std::move(post));
  }
  return out;
}

template <typename Column>
StatusOr<std::vector<linalg::Vector>> ForwardOnlyImpl(
    const markov::TransitionMatrix& transition, const linalg::Vector& initial,
    const std::vector<Column>& emissions) {
  PRISTE_RETURN_IF_ERROR(ValidateInputs(transition, initial, emissions));
  std::vector<linalg::Vector> alphas;
  std::vector<double> scales;
  PRISTE_RETURN_IF_ERROR(
      ScaledForward(transition, initial, emissions, alphas, scales));
  return alphas;
}

}  // namespace

StatusOr<ForwardBackwardResult> ForwardBackward(
    const markov::TransitionMatrix& transition, const linalg::Vector& initial,
    const std::vector<linalg::Vector>& emissions) {
  return ForwardBackwardImpl(transition, initial, emissions);
}

StatusOr<ForwardBackwardResult> ForwardBackward(
    const markov::TransitionMatrix& transition, const linalg::Vector& initial,
    const std::vector<linalg::SparseVector>& emissions) {
  return ForwardBackwardImpl(transition, initial, emissions);
}

StatusOr<std::vector<linalg::Vector>> ForwardOnly(
    const markov::TransitionMatrix& transition, const linalg::Vector& initial,
    const std::vector<linalg::Vector>& emissions) {
  return ForwardOnlyImpl(transition, initial, emissions);
}

StatusOr<std::vector<linalg::Vector>> ForwardOnly(
    const markov::TransitionMatrix& transition, const linalg::Vector& initial,
    const std::vector<linalg::SparseVector>& emissions) {
  return ForwardOnlyImpl(transition, initial, emissions);
}

StatusOr<linalg::Vector> PosteriorUpdate(const linalg::Vector& prior,
                                         const linalg::Vector& emission_column) {
  if (prior.size() != emission_column.size()) {
    return Status::InvalidArgument("prior/emission size mismatch");
  }
  linalg::Vector post = prior.Hadamard(emission_column);
  const double norm = post.Sum();
  if (norm <= 0.0) {
    return Status::FailedPrecondition("observation impossible under prior");
  }
  post.ScaleInPlace(1.0 / norm);
  return post;
}

StatusOr<linalg::Vector> PosteriorUpdate(
    const linalg::Vector& prior, const linalg::SparseVector& emission_column) {
  if (prior.size() != emission_column.size()) {
    return Status::InvalidArgument("prior/emission size mismatch");
  }
  linalg::Vector post(prior.size());
  emission_column.HadamardInto(prior, post);
  const double norm = post.Sum();
  if (norm <= 0.0) {
    return Status::FailedPrecondition("observation impossible under prior");
  }
  post.ScaleInPlace(1.0 / norm);
  return post;
}

}  // namespace priste::hmm
