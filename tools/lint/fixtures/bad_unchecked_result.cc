// Seeded-bad fixture for priste_callgraph --self-test.
//
// Calls whose Status / StatusOr<T> / Result<T> return value is discarded.
// Four violations — including the two [[nodiscard]] cannot stop:
//   1. bare statement discard            WriteThing(1);
//   2. cast-laundered discard            (void)WriteThing(2);
//   3. comma-operator discard            WriteThing(3), Touch();
//   4. if-statement-body discard         if (cond) WriteThing(4);
// The consumed forms below must NOT fire.
// Expected: 4 unchecked-result findings.

namespace fixture {

struct Status {
  bool ok() const { return true; }
};
template <typename T>
struct Result {
  bool has_value() const { return true; }
};

Status WriteThing(int v);
Result<int> ReadThing(int v);
void Touch();
void Consume(Status s);

Status WriteThing(int v) { return Status{}; }
Result<int> ReadThing(int v) { return Result<int>{}; }

void Violations(bool cond) {
  WriteThing(1);                 // 1: bare discard
  (void)WriteThing(2);           // 2: cast-laundered
  WriteThing(3), Touch();        // 3: comma operator
  if (cond) WriteThing(4);       // 4: if-body discard
}

Status ConsumedForms(bool cond) {
  Status s = WriteThing(5);              // assigned
  if (!WriteThing(6).ok()) return s;     // chained access
  Consume(WriteThing(7));                // argument
  const auto r = ReadThing(8);           // assigned (Result<T>)
  if (r.has_value() && cond) return WriteThing(9);  // returned
  // priste-lint: allow(unchecked-result) fixture: waiver honored
  WriteThing(10);
  return s;
}

}  // namespace fixture
