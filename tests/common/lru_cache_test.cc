#include "priste/common/lru_cache.h"

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "priste/common/metrics.h"
#include "priste/common/thread_pool.h"

namespace priste {
namespace {

using IntCache = ShardedLruCache<int, std::vector<double>>;

std::vector<double> MakeValue(int key, size_t n = 8) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<double>(key) + static_cast<double>(i) * 0.5;
  }
  return v;
}

TEST(ShardedLruCacheTest, InsertThenLookupHits) {
  IntCache cache("t.basic", 1 << 20, 4);
  EXPECT_EQ(cache.Lookup(1), nullptr);
  const IntCache::Handle inserted = cache.Insert(1, MakeValue(1), 64);
  const IntCache::Handle found = cache.Lookup(1);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found.get(), inserted.get());
  EXPECT_EQ(*found, MakeValue(1));
}

TEST(ShardedLruCacheTest, GetOrBuildBuildsOnceThenServes) {
  IntCache cache("t.build", 1 << 20, 4);
  int builds = 0;
  const auto build = [&] {
    ++builds;
    return MakeValue(7);
  };
  const auto charge = [](const std::vector<double>&) { return size_t{64}; };
  const IntCache::Handle a = cache.GetOrBuild(7, build, charge);
  const IntCache::Handle b = cache.GetOrBuild(7, build, charge);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(a.get(), b.get());
}

TEST(ShardedLruCacheTest, EvictsLeastRecentlyUsedWithinShard) {
  // One shard so recency ordering is global; capacity fits two entries.
  IntCache cache("t.evict", 128, 1);
  (void)cache.Insert(1, MakeValue(1), 64);
  (void)cache.Insert(2, MakeValue(2), 64);
  ASSERT_NE(cache.Lookup(1), nullptr);  // 1 becomes MRU, 2 is now LRU
  (void)cache.Insert(3, MakeValue(3), 64);  // over capacity → evict 2
  EXPECT_EQ(cache.Lookup(2), nullptr);
  EXPECT_NE(cache.Lookup(1), nullptr);
  EXPECT_NE(cache.Lookup(3), nullptr);
}

TEST(ShardedLruCacheTest, HandleOutlivesEviction) {
  IntCache cache("t.pin", 64, 1);
  const IntCache::Handle pinned = cache.Insert(1, MakeValue(1), 64);
  (void)cache.Insert(2, MakeValue(2), 64);  // evicts key 1
  EXPECT_EQ(cache.Lookup(1), nullptr);
  // The evicted entry's storage is still alive through the handle.
  EXPECT_EQ(*pinned, MakeValue(1));
}

TEST(ShardedLruCacheTest, OverCapacityValueIsReturnedButNotRetained) {
  IntCache cache("t.huge", 32, 1);
  const IntCache::Handle h = cache.Insert(1, MakeValue(1), 1000);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(*h, MakeValue(1));
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.TotalChargeBytes(), 0u);
}

TEST(ShardedLruCacheTest, DisabledCacheNeverRetains) {
  IntCache cache("t.off", 1 << 20, 4);
  cache.SetEnabled(false);
  EXPECT_FALSE(cache.enabled());
  const IntCache::Handle h = cache.Insert(1, MakeValue(1), 64);
  ASSERT_NE(h, nullptr);  // caller still gets the value
  EXPECT_EQ(cache.Lookup(1), nullptr);
  cache.SetEnabled(true);
  EXPECT_TRUE(cache.enabled());
}

TEST(ShardedLruCacheTest, ZeroCapacityBehavesDisabled) {
  IntCache cache("t.zero", 0, 4);
  EXPECT_FALSE(cache.enabled());
  (void)cache.Insert(1, MakeValue(1), 64);
  EXPECT_EQ(cache.Lookup(1), nullptr);
}

TEST(ShardedLruCacheTest, ClearDropsEntriesButKeepsHandles) {
  IntCache cache("t.clear", 1 << 20, 4);
  const IntCache::Handle h = cache.Insert(1, MakeValue(1), 64);
  cache.Clear();
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.TotalChargeBytes(), 0u);
  EXPECT_EQ(*h, MakeValue(1));
}

TEST(ShardedLruCacheTest, PublishesCounters) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  IntCache cache("t.metrics", 128, 1);
  Counter& hits = registry.GetCounter("t.metrics.hits");
  Counter& misses = registry.GetCounter("t.metrics.misses");
  Counter& evictions = registry.GetCounter("t.metrics.evictions");
  Gauge& bytes = registry.GetGauge("t.metrics.bytes");
  const long hits0 = hits.value();
  const long misses0 = misses.value();
  const long evictions0 = evictions.value();

  (void)cache.Lookup(1);                    // miss
  (void)cache.Insert(1, MakeValue(1), 64);  // bytes += 64
  (void)cache.Lookup(1);                    // hit
  EXPECT_EQ(misses.value() - misses0, 1);
  EXPECT_EQ(hits.value() - hits0, 1);
  EXPECT_EQ(bytes.value(), 64);
  (void)cache.Insert(2, MakeValue(2), 64);
  (void)cache.Insert(3, MakeValue(3), 64);  // evicts the LRU entry
  EXPECT_GE(evictions.value() - evictions0, 1);
  EXPECT_LE(cache.TotalChargeBytes(), 128u);
  cache.Clear();
  EXPECT_EQ(bytes.value(), 0);
}

TEST(ShardedLruCacheTest, ConcurrentMixedOperationsStayConsistent) {
  // Insert/lookup/evict races across a keyspace larger than capacity: every
  // returned handle must carry the value its key deterministically builds,
  // and the retained charge must respect capacity once writers quiesce.
  IntCache cache("t.race", 8 * 1024, 8);
  ThreadPool pool(4);
  constexpr int kWorkers = 8;
  constexpr int kOpsPerWorker = 4000;
  constexpr int kKeySpace = 64;
  std::atomic<int> mismatches{0};
  ParallelFor(pool, kWorkers, [&](size_t w) {
    for (int i = 0; i < kOpsPerWorker; ++i) {
      const int key = static_cast<int>((w * 131 + static_cast<size_t>(i) * 7) %
                                       kKeySpace);
      const IntCache::Handle h = cache.GetOrBuild(
          key, [key] { return MakeValue(key, 32); },
          [](const std::vector<double>& v) { return v.size() * sizeof(double); });
      if (h == nullptr || *h != MakeValue(key, 32)) mismatches.fetch_add(1);
      if (i % 16 == 0) (void)cache.Lookup(key);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(cache.TotalChargeBytes(), 8u * 1024u);
}

TEST(ShardedLruCacheTest, ConcurrentEvictionKeepsHeldHandlesAlive) {
  // Tiny capacity: nearly every insert evicts. Holders must keep reading
  // their own values bit-identically while the cache churns.
  IntCache cache("t.churn", 512, 2);
  ThreadPool pool(4);
  std::atomic<int> mismatches{0};
  ParallelFor(pool, 8, [&](size_t w) {
    std::vector<IntCache::Handle> held;
    for (int i = 0; i < 2000; ++i) {
      const int key = static_cast<int>((w * 17 + static_cast<size_t>(i)) % 50);
      held.push_back(cache.GetOrBuild(
          key, [key] { return MakeValue(key); },
          [](const std::vector<double>& v) { return v.size() * sizeof(double); }));
      if (held.size() > 8) held.erase(held.begin());
      for (size_t k = 0; k < held.size(); ++k) {
        const int expect_key =
            static_cast<int>((w * 17 + static_cast<size_t>(i) -
                              (held.size() - 1 - k)) % 50);
        if (*held[k] != MakeValue(expect_key)) mismatches.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ShardedLruCacheTest, SetCapacityAppliesOnNextInsert) {
  IntCache cache("t.resize", 1 << 20, 1);
  (void)cache.Insert(1, MakeValue(1), 64);
  (void)cache.Insert(2, MakeValue(2), 64);
  cache.SetCapacityBytes(64);
  EXPECT_EQ(cache.capacity_bytes(), 64u);
  (void)cache.Insert(3, MakeValue(3), 64);  // triggers eviction down to capacity
  EXPECT_LE(cache.TotalChargeBytes(), 64u);
}

}  // namespace
}  // namespace priste
