// Case Study 2 walkthrough: PriSTE with δ-location set privacy (Algorithm 3).
// Shows the per-timestamp machinery — Markov prediction, δ-location set
// construction, restricted planar Laplace, posterior update — and compares
// utility against the unrestricted Algorithm 2 on the same trajectory.
//
// Build & run:  ./build/examples/delta_location_set_demo
#include <cstdio>
#include <memory>

#include "priste/core/priste_delta_loc.h"
#include "priste/core/priste_geo_ind.h"
#include "priste/eval/metrics.h"
#include "priste/event/presence.h"
#include "priste/hmm/forward_backward.h"
#include "priste/geo/gaussian_grid_model.h"
#include "priste/lppm/delta_location_set.h"

int main() {
  using namespace priste;
  Rng rng(5);

  const geo::Grid grid(8, 8, 1.0);
  const geo::GaussianGridModel mobility(grid, 0.8);  // strong local pattern
  const auto event = event::PresenceEvent::Make(grid.num_cells(), 1, 8,
                                                /*start=*/3, /*end=*/5);
  const linalg::Vector pi = linalg::Vector::UniformProbability(grid.num_cells());

  // Show how the δ-location set shrinks as the posterior sharpens.
  std::printf("delta-location-set sizes along a trajectory (delta = 0.2):\n");
  {
    const markov::TransitionMatrix transition = mobility.transition();
    linalg::Vector posterior = pi;
    Rng demo_rng(9);
    const markov::MarkovChain chain = mobility.ChainUniformStart();
    const geo::Trajectory truth(chain.Sample(6, demo_rng));
    for (int t = 1; t <= truth.length(); ++t) {
      const linalg::Vector predicted = transition.Propagate(posterior);
      const auto set = lppm::DeltaLocationSet(predicted, 0.2);
      if (!set.ok()) return 1;
      const lppm::DeltaRestrictedPlanarLaplace mech(grid, 0.5, *set);
      const int o = mech.Perturb(truth.At(t), demo_rng);
      const auto updated = hmm::PosteriorUpdate(
          predicted, mech.emission().EmissionColumn(o));
      if (!updated.ok()) return 1;
      posterior = *updated;
      std::printf("  t=%d  |dX|=%3zu  released cell %d (true %d)\n", t,
                  set->Count(), o, truth.At(t));
    }
  }

  // Full Algorithm 3 vs Algorithm 2 on the same privacy target.
  core::PristeOptions options;
  options.epsilon = 0.8;
  options.initial_alpha = 0.5;

  const markov::MarkovChain chain = mobility.ChainUniformStart();
  Rng traj_rng(13);
  const geo::Trajectory truth(chain.Sample(8, traj_rng));

  const core::PristeGeoInd plain(grid, mobility.transition(), {event}, options);
  const core::PristeDeltaLoc restricted(grid, mobility.transition(), {event},
                                        /*delta=*/0.2, pi, options);
  Rng run_rng_a(21), run_rng_b(21);
  const auto run_plain = plain.Run(truth, run_rng_a);
  const auto run_restricted = restricted.Run(truth, run_rng_b);
  if (!run_plain.ok() || !run_restricted.ok()) {
    std::printf("run failed\n");
    return 1;
  }

  std::printf("\n%28s  %12s  %12s\n", "", "mean budget", "euclid (km)");
  std::printf("%28s  %12.4f  %12.3f\n", "Algorithm 2 (geo-ind)",
              eval::MeanReleasedAlpha(*run_plain),
              eval::MeanEuclideanErrorKm(truth, *run_plain, grid));
  std::printf("%28s  %12.4f  %12.3f\n", "Algorithm 3 (delta-loc-set)",
              eval::MeanReleasedAlpha(*run_restricted),
              eval::MeanEuclideanErrorKm(truth, *run_restricted, grid));
  std::printf(
      "\nReading: the restricted mechanism often needs a smaller certified\n"
      "budget (its metric is weaker under temporal correlation, Fig. 10) but\n"
      "keeps the released cells close to the truth because the output domain\n"
      "is confined to the plausible region (Fig. 12's utility effect).\n");
  return 0;
}
