#include "priste/hmm/emission_model.h"

#include <cmath>

#include "priste/common/strings.h"

namespace priste::hmm {

StatusOr<EmissionMatrix> EmissionMatrix::Create(linalg::Matrix e, double tol) {
  if (e.rows() == 0 || e.cols() == 0) {
    return Status::InvalidArgument("EmissionMatrix must be non-empty");
  }
  for (size_t r = 0; r < e.rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < e.cols(); ++c) {
      if (e(r, c) < -tol) {
        return Status::InvalidArgument(
            StrFormat("EmissionMatrix entry (%zu,%zu)=%g is negative", r, c, e(r, c)));
      }
      sum += e(r, c);
    }
    if (std::fabs(sum - 1.0) > tol) {
      return Status::InvalidArgument(
          StrFormat("EmissionMatrix row %zu sums to %g, expected 1", r, sum));
    }
    for (size_t c = 0; c < e.cols(); ++c) {
      e(r, c) = e(r, c) < 0.0 ? 0.0 : e(r, c) / sum;
    }
  }
  return EmissionMatrix(std::move(e));
}

EmissionMatrix EmissionMatrix::Identity(size_t num_states) {
  return EmissionMatrix(linalg::Matrix::Identity(num_states));
}

EmissionMatrix EmissionMatrix::Uniform(size_t num_states, size_t num_outputs) {
  PRISTE_CHECK(num_states > 0 && num_outputs > 0);
  return EmissionMatrix(
      linalg::Matrix(num_states, num_outputs, 1.0 / static_cast<double>(num_outputs)));
}

linalg::Vector EmissionMatrix::EmissionColumn(int output) const {
  PRISTE_CHECK(output >= 0 && static_cast<size_t>(output) < num_outputs());
  return matrix_.Col(static_cast<size_t>(output));
}

linalg::SparseVector EmissionMatrix::SparseEmissionColumn(
    int output, double prune_tol) const {
  PRISTE_CHECK(output >= 0 && static_cast<size_t>(output) < num_outputs());
  const size_t o = static_cast<size_t>(output);
  std::vector<size_t> indices;
  std::vector<double> values;
  for (size_t r = 0; r < num_states(); ++r) {
    const double v = matrix_(r, o);
    if (std::fabs(v) > prune_tol) {
      indices.push_back(r);
      values.push_back(v);
    }
  }
  return linalg::SparseVector(num_states(), std::move(indices),
                              std::move(values));
}

linalg::Vector EmissionMatrix::OutputDistribution(int state) const {
  PRISTE_CHECK(state >= 0 && static_cast<size_t>(state) < num_states());
  return matrix_.Row(static_cast<size_t>(state));
}

}  // namespace priste::hmm
