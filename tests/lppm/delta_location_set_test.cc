#include "priste/lppm/delta_location_set.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace priste::lppm {
namespace {

TEST(DeltaLocationSetTest, CoversRequiredMass) {
  const linalg::Vector prior{0.5, 0.3, 0.1, 0.06, 0.04};
  const auto set = DeltaLocationSet(prior, 0.15);
  ASSERT_TRUE(set.ok());
  // Needs >= 0.85 mass: {0.5, 0.3, 0.1} = 0.9 with 3 cells; 2 cells give 0.8.
  EXPECT_EQ(set->States(), (std::vector<int>{0, 1, 2}));
}

TEST(DeltaLocationSetTest, ZeroDeltaTakesEverythingWithMass) {
  const linalg::Vector prior{0.5, 0.5, 0.0};
  const auto set = DeltaLocationSet(prior, 0.0);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->Count(), 2u);
}

TEST(DeltaLocationSetTest, LargerDeltaSmallerSet) {
  Rng rng(3);
  const linalg::Vector prior = testing::RandomProbability(50, rng);
  const auto small = DeltaLocationSet(prior, 0.05);
  const auto large = DeltaLocationSet(prior, 0.5);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GE(small->Count(), large->Count());
}

TEST(DeltaLocationSetTest, SetIsMinimalForTopHeavyPrior) {
  const linalg::Vector prior{0.96, 0.01, 0.01, 0.01, 0.01};
  const auto set = DeltaLocationSet(prior, 0.05);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->Count(), 1u);
  EXPECT_TRUE(set->Contains(0));
}

TEST(DeltaLocationSetTest, RejectsBadInputs) {
  EXPECT_FALSE(DeltaLocationSet(linalg::Vector{0.5, 0.5}, -0.1).ok());
  EXPECT_FALSE(DeltaLocationSet(linalg::Vector{0.5, 0.5}, 1.0).ok());
  EXPECT_FALSE(DeltaLocationSet(linalg::Vector(), 0.1).ok());
  EXPECT_FALSE(DeltaLocationSet(linalg::Vector{0.9, 0.3}, 0.1).ok());
}

TEST(DeltaRestrictedPlmTest, OutputsConfinedToSet) {
  const geo::Grid grid(4, 4, 1.0);
  const geo::Region set(16, {0, 1, 5});
  const DeltaRestrictedPlanarLaplace mech(grid, 1.0, set);
  const auto& e = mech.emission();
  for (size_t s = 0; s < 16; ++s) {
    for (size_t o = 0; o < 16; ++o) {
      if (!set.Contains(static_cast<int>(o))) {
        EXPECT_DOUBLE_EQ(e(s, o), 0.0) << "state " << s << " output " << o;
      }
    }
    EXPECT_NEAR(e.OutputDistribution(static_cast<int>(s)).Sum(), 1.0, 1e-9);
  }
}

TEST(DeltaRestrictedPlmTest, InSetTruthIsModal) {
  const geo::Grid grid(4, 4, 1.0);
  const geo::Region set(16, {0, 1, 2, 3, 4, 5, 6, 7});
  const DeltaRestrictedPlanarLaplace mech(grid, 2.0, set);
  for (int s : set.States()) {
    EXPECT_EQ(mech.emission().OutputDistribution(s).ArgMax(),
              static_cast<size_t>(s));
  }
}

TEST(DeltaRestrictedPlmTest, OutOfSetStateUsesNearestSurrogate) {
  const geo::Grid grid(4, 1, 1.0);  // cells 0..3 in a row
  const geo::Region set(4, {0, 1});
  const DeltaRestrictedPlanarLaplace mech(grid, 1.0, set);
  // True state 3 is closest to set member 1, so output 1 dominates output 0.
  EXPECT_GT(mech.emission()(3, 1), mech.emission()(3, 0));
}

TEST(DeltaRestrictedPlmTest, ZeroAlphaUniformOverSet) {
  const geo::Grid grid(3, 3, 1.0);
  const geo::Region set(9, {2, 4, 6});
  const DeltaRestrictedPlanarLaplace mech(grid, 0.0, set);
  EXPECT_NEAR(mech.emission()(0, 2), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(mech.emission()(8, 6), 1.0 / 3.0, 1e-12);
}

TEST(DeltaRestrictedPlmTest, PerturbStaysInSet) {
  const geo::Grid grid(4, 4, 1.0);
  const geo::Region set(16, {3, 7, 11});
  const DeltaRestrictedPlanarLaplace mech(grid, 0.7, set);
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(set.Contains(mech.Perturb(i % 16, rng)));
  }
}

}  // namespace
}  // namespace priste::lppm
