#ifndef PRISTE_EVENT_EVENT_H_
#define PRISTE_EVENT_EVENT_H_

#include <memory>
#include <string>
#include <vector>

#include "priste/event/boolean_expr.h"
#include "priste/geo/region.h"
#include "priste/geo/trajectory.h"

namespace priste::event {

/// Base class for the two representative spatiotemporal events the paper's
/// quantification machinery supports (Section II-B): PRESENCE — the user
/// appears in a region at *any* timestamp of a window — and PATTERN — the
/// user's locations lie in a sequence of regions at *every* timestamp of a
/// window. Both carry a consecutive window [start, end] (1-based, inclusive)
/// and one region per window timestamp.
class SpatiotemporalEvent {
 public:
  enum class Kind { kPresence, kPattern };

  virtual ~SpatiotemporalEvent() = default;

  virtual Kind kind() const = 0;

  /// First / last timestamp of the event window (1-based, inclusive).
  int start() const { return start_; }
  int end() const { return end_; }
  int window_length() const { return end_ - start_ + 1; }

  size_t num_states() const { return regions_.front().num_states(); }

  /// The region at window timestamp t ∈ [start, end].
  const geo::Region& RegionAt(int t) const;

  /// Ground truth of the event on a trajectory covering the window.
  virtual bool Holds(const geo::Trajectory& trajectory) const = 0;

  /// Expands the event to its Boolean expression (Table II) — exponential
  /// objects stay small because PRESENCE/PATTERN are flat OR/AND-of-ORs.
  virtual BoolExpr::Ptr ToBooleanExpr() const = 0;

  virtual std::string ToString() const = 0;

 protected:
  /// `regions[i]` is the region at timestamp start+i; all regions must share
  /// the same state count, the window must be non-empty and start >= 1.
  SpatiotemporalEvent(int start, std::vector<geo::Region> regions);

  const std::vector<geo::Region>& regions() const { return regions_; }

 private:
  int start_;
  int end_;
  std::vector<geo::Region> regions_;
};

using EventPtr = std::shared_ptr<const SpatiotemporalEvent>;

}  // namespace priste::event

#endif  // PRISTE_EVENT_EVENT_H_
