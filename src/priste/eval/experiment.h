#ifndef PRISTE_EVAL_EXPERIMENT_H_
#define PRISTE_EVAL_EXPERIMENT_H_

#include <optional>
#include <string>
#include <vector>

#include "priste/core/priste.h"
#include "priste/core/priste_delta_loc.h"
#include "priste/core/priste_geo_ind.h"
#include "priste/eval/aggregate.h"
#include "priste/geo/gaussian_grid_model.h"
#include "priste/geo/grid.h"
#include "priste/markov/markov_chain.h"

namespace priste::eval {

/// Environment-driven experiment scale. The paper's full scale (20×20 grid,
/// T = 50, 100 runs) is expensive with the reference QP settings, so the
/// bench harness defaults to a reduced-but-faithful scale and honours:
///   PRISTE_FULL=1   → paper scale,
///   PRISTE_RUNS=N   → override the repetition count.
struct ExperimentScale {
  int grid_width = 16;
  int grid_height = 16;
  int horizon = 30;           // T
  int runs = 3;
  bool full = false;

  static ExperimentScale FromEnv();

  /// Scales the paper's 1-based state-range shorthand (e.g. {1:10} on the
  /// 20×20 map) proportionally onto this grid; identity at full scale.
  int MapStateCount(int paper_count, int paper_grid_cells = 400) const;

  /// Scales a paper timestamp on the T=50 horizon onto this horizon.
  int MapTimestamp(int paper_t, int paper_horizon = 50) const;
};

/// A synthetic workload in the paper's Section V-A setup: Gaussian-kernel
/// transitions of scale σ on the grid, uniform initial distribution.
struct SyntheticWorkload {
  geo::Grid grid;
  geo::GaussianGridModel model;

  SyntheticWorkload(const ExperimentScale& scale, double sigma);
  markov::MarkovChain Chain() const { return model.ChainUniformStart(); }
};

/// Aggregated outcome of repeated PriSTE runs on fresh trajectories.
struct RepeatedRunStats {
  /// Per-timestamp released-budget statistics (Figs. 7–10).
  SeriesStats budget_per_timestamp;
  /// Whole-run scalar metrics (Figs. 11–13, Table III).
  RunningStats mean_budget;
  RunningStats euclid_km;
  RunningStats run_seconds;
  RunningStats conservative_releases;
};

/// Runs `scale.runs` PriSTE-with-geo-indistinguishability episodes: each run
/// samples a fresh true trajectory from `chain`, protects `events`, and
/// aggregates the metrics. Seeds derive from `seed` deterministically.
RepeatedRunStats RunRepeatedGeoInd(const geo::Grid& grid,
                                   const markov::MarkovChain& chain,
                                   const std::vector<event::EventPtr>& events,
                                   const core::PristeOptions& options,
                                   const ExperimentScale& scale, uint64_t seed);

/// δ-location-set counterpart (Algorithm 3).
RepeatedRunStats RunRepeatedDeltaLoc(const geo::Grid& grid,
                                     const markov::MarkovChain& chain,
                                     const std::vector<event::EventPtr>& events,
                                     double delta,
                                     const core::PristeOptions& options,
                                     const ExperimentScale& scale, uint64_t seed);

/// Default PriSTE options used across the benches (paper Section V settings
/// with this library's QP engine).
core::PristeOptions DefaultBenchOptions(double epsilon, double alpha);

/// One-paragraph rendering of the process-wide runtime metrics accumulated
/// so far (cache hit rates, release/QP counters, latency quantiles) —
/// appended to bench run summaries and `priste_cli --metrics`. Purely
/// observational: reading it never perturbs results.
std::string RuntimeMetricsSummary();

}  // namespace priste::eval

#endif  // PRISTE_EVAL_EXPERIMENT_H_
