// Concurrency stress suites written FOR ThreadSanitizer: each test drives a
// shared structure from several threads at once with enough churn that a
// missing acquire/release or an unguarded field produces an actual
// interleaving TSan can flag. They also run (fast) in the plain test legs,
// where they assert the invariants that survive any interleaving — exact
// counts, live handles, snapshot consistency — so a logic race that happens
// to be TSan-clean still fails somewhere.
//
// Keep these suites on the TSan CI leg's filter list
// (CMakePresets.json, test preset "tsan") when renaming anything here.

#include <array>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "priste/common/lru_cache.h"
#include "priste/common/metrics.h"
#include "priste/common/thread_pool.h"

namespace priste {
namespace {

// --- ShardedLruCache: GetOrBuild churn vs eviction vs held handles ---------

// A payload big enough that a small capacity forces continual eviction.
struct Payload {
  explicit Payload(int k) : tag(k), data(256, static_cast<double>(k)) {}
  int tag;
  std::vector<double> data;
};

TEST(TsanStressTest, LruCacheChurnWithEvictionAndHeldHandles) {
  // Capacity of ~8 payloads across 4 shards: every thread's working set of
  // 32 keys cannot fit, so inserts and evictions run concurrently with
  // lookups and with handles the other threads still hold.
  const size_t payload_charge = sizeof(Payload) + 256 * sizeof(double);
  ShardedLruCache<int, Payload> cache("test.tsan_lru", 8 * payload_charge,
                                      /*num_shards=*/4);
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  constexpr int kKeySpace = 32;

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread pins a handful of handles and re-validates them while
      // the other threads evict those same entries: eviction must only drop
      // the cache's reference, never the storage behind a live handle.
      std::vector<ShardedLruCache<int, Payload>::Handle> held;
      for (int i = 0; i < kIters; ++i) {
        const int key = (i * 7 + t * 13) % kKeySpace;
        auto handle = cache.GetOrBuild(
            key, [key] { return Payload(key); },
            [payload_charge](const Payload&) { return payload_charge; });
        if (handle->tag != key || handle->data[5] != key) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 16 == t) held.push_back(handle);
        if (held.size() > 8) held.erase(held.begin());
        for (const auto& h : held) {
          if (h->data[0] != h->tag) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (i % 100 == 99 && t == 0) cache.Clear();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// --- ThreadPool: nested ParallelFor under a tiny pool ----------------------

TEST(TsanStressTest, NestedParallelForUnderTwoThreadPool) {
  // The outer loop's iterations issue their own ParallelFor on the same
  // 2-thread pool. Workers are all busy running outer iterations, so the
  // inner loops must make progress from the submitting thread itself
  // (help-along), not deadlock waiting for a free worker — and the
  // done-count handshake is exercised from worker AND caller threads
  // concurrently.
  ThreadPool pool(2);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 16;
  std::array<std::array<std::atomic<int>, kInner>, kOuter> counts{};
  ParallelFor(pool, kOuter, [&](size_t i) {
    ParallelFor(pool, kInner, [&, i](size_t j) {
      counts[i][j].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (size_t i = 0; i < kOuter; ++i) {
    for (size_t j = 0; j < kInner; ++j) {
      EXPECT_EQ(counts[i][j].load(), 1) << i << "," << j;
    }
  }
}

// --- MetricsRegistry: histogram writers racing TakeSnapshot ----------------

TEST(TsanStressTest, ConcurrentHistogramWritersDuringSnapshot) {
  MetricsRegistry registry;
  Histogram& hist = registry.GetHistogram("test.tsan_hist");
  Counter& ctr = registry.GetCounter("test.tsan_ctr");

  constexpr int kWriters = 3;
  constexpr long kPerWriter = 2000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (long i = 0; i < kPerWriter; ++i) {
        hist.Record(1e-6 * static_cast<double>((i % 20) + w));
        ctr.Increment();
        // Interleave directory lookups with the wait-free writes: the
        // registration mutex must not order against Record/Increment.
        if (i % 512 == 0) registry.GetCounter("test.tsan_ctr").Increment();
      }
    });
  }

  // Snapshot continually while the writers run. The histogram's count is
  // DERIVED from its buckets (metrics.h), so even a mid-write snapshot must
  // be internally consistent: monotone non-decreasing, never past the total
  // written, quantile estimates ordered.
  const long kTotal = kWriters * kPerWriter;
  long last_count = 0;
  while (last_count < kTotal) {
    const MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
    for (const auto& h : snap.histograms) {
      ASSERT_EQ(h.name, "test.tsan_hist");
      EXPECT_GE(h.count, last_count);
      EXPECT_LE(h.count, kTotal);
      if (h.count > 0) {
        EXPECT_LE(h.p50_seconds, h.p99_seconds);
      }
      last_count = h.count;
    }
  }
  for (auto& th : writers) th.join();

  const MetricsRegistry::Snapshot final_snap = registry.TakeSnapshot();
  ASSERT_EQ(final_snap.histograms.size(), 1u);
  EXPECT_EQ(final_snap.histograms[0].count, kTotal);
  EXPECT_GE(final_snap.counters[0].value, kTotal);
}

}  // namespace
}  // namespace priste
